"""Overload: outcome time-series through a 10x flash crowd, DPC vs no-cache.

Not a paper figure — the paper's Section 6 measures steady-state
throughput, and its flash-crowd motivation (Section 1) is exactly the
regime where a steady-state bench is blind.  This bench replays one
seeded flash crowd through the ``repro.overload`` machinery twice — once
against the DPC deployment, once against the caching-disabled baseline —
and charts per-bucket completions, sheds, timeouts, queue depth, and p99
for both.  The protected DPC sheds origin-bound work gracefully (bounded
tail latency, zero incorrect pages, predicted hits never shed) while the
baseline saturates its bounded queues and collapses into rejections and
deadline misses.

Run directly for a quick look:  python benchmarks/bench_overload.py --smoke
"""

import argparse
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.harness.testbed import TestbedConfig
from repro.overload import CircuitBreaker, CoDelPolicy, OverloadConfig, run_overload
from repro.sites.synthetic import SyntheticParams
from repro.workload import FlashCrowdProcess

REQUESTS = 600
WARMUP = 100
BUCKET = 50
DEADLINE_S = 1.5
BASE_RATE = 6.0
MULTIPLIER = 10.0
SEED = 11


def overload_config(mode, requests=REQUESTS, warmup=WARMUP):
    params = SyntheticParams(
        num_pages=10, fragments_per_page=4, fragment_size=2048,
        cacheability=0.75,
    )
    testbed = TestbedConfig(
        mode=mode, synthetic=params, target_hit_ratio=0.9,
        requests=requests, warmup_requests=warmup, seed=SEED,
        arrivals=FlashCrowdProcess(
            base_rate=BASE_RATE, multiplier=MULTIPLIER, burst_at=20.0,
            hold_s=5.0, decay_s=2.0, deterministic=True,
        ),
    )
    dpc_mode = mode == "dpc"
    return OverloadConfig(
        testbed=testbed,
        deadline_s=DEADLINE_S,
        policy=CoDelPolicy(target_s=0.05, interval_s=0.5) if dpc_mode else None,
        breaker=CircuitBreaker(failure_threshold=5, open_s=1.0)
        if dpc_mode else None,
        bucket_requests=BUCKET,
        correctness_every=1 if dpc_mode else 0,
    )


def paired_runs(requests=REQUESTS, warmup=WARMUP):
    protected = run_overload(overload_config("dpc", requests, warmup))
    baseline = run_overload(overload_config("no_cache", requests, warmup))
    return protected, baseline


def series_rows(protected, baseline):
    rows = []
    for dpc_bucket, base_bucket in zip(protected.buckets, baseline.buckets):
        rows.append([
            "%.2f" % dpc_bucket.start_time,
            "%d" % dpc_bucket.completed,
            "%d" % (dpc_bucket.shed + dpc_bucket.timed_out),
            "%.3f" % dpc_bucket.p99,
            "%d" % dpc_bucket.queue_depth,
            "%d" % base_bucket.completed,
            "%d" % (base_bucket.shed + base_bucket.timed_out),
            "%.3f" % base_bucket.p99,
            "%d" % base_bucket.queue_depth,
        ])
    return rows


def summary_rows(protected, baseline):
    def column(result):
        return [
            "%d" % result.offered,
            "%d" % result.completed_fresh,
            "%d" % result.completed_stale,
            "%d" % result.shed,
            "%d" % result.timed_out,
            "%d" % result.hits_shed,
            "%.3f" % result.p50(),
            "%.3f" % result.p99(),
            "%d" % result.ledger.count("queue_full"),
            "%d" % result.ledger.count("deadline_exceeded"),
            "%d" % result.ledger.count("policy_shed"),
            "%d" % result.incorrect_pages,
        ]

    metrics = [
        "offered", "fresh", "stale", "shed", "timed out", "hits shed",
        "p50 (s)", "p99 (s)", "drop: queue full", "drop: deadline",
        "drop: policy", "incorrect pages",
    ]
    dpc_col = column(protected)
    base_col = column(baseline)
    return [[m, d, b] for m, d, b in zip(metrics, dpc_col, base_col)]


SERIES_HEADERS = [
    "t (s)", "dpc ok", "dpc fail", "dpc p99", "dpc depth",
    "base ok", "base fail", "base p99", "base depth",
]


def check(protected, baseline):
    """The acceptance-level assertions both entry points share."""
    assert protected.conserved and baseline.conserved
    assert protected.incorrect_pages == 0
    assert protected.hits_shed == 0
    assert protected.p99() <= DEADLINE_S
    assert baseline.ledger.count("queue_full") > 0
    assert protected.completed > baseline.completed


def test_flash_crowd_overload(benchmark, report):
    protected, baseline = benchmark.pedantic(paired_runs, rounds=1, iterations=1)

    report(
        "Flash crowd %gx at t=20s (deadline %.1fs): per-bucket outcomes"
        % (MULTIPLIER, DEADLINE_S),
        SERIES_HEADERS,
        series_rows(protected, baseline),
    )
    report(
        "Overload summary (DPC vs no-cache baseline)",
        ["metric", "dpc", "no cache"],
        summary_rows(protected, baseline),
    )

    check(protected, baseline)
    # Determinism: the same seeded config reproduces the exact series.
    rerun = run_overload(overload_config("dpc"))
    assert rerun.series() == protected.series()


def main(argv=None):
    from repro.harness.reporting import format_table

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="shrink the run for CI smoke budgets",
    )
    args = parser.parse_args(argv)
    requests, warmup = (250, 50) if args.smoke else (REQUESTS, WARMUP)

    protected, baseline = paired_runs(requests, warmup)
    print("=== Flash crowd %gx: per-bucket outcomes ===" % MULTIPLIER)
    print(format_table(SERIES_HEADERS, series_rows(protected, baseline)))
    print()
    print("=== Overload summary (DPC vs no-cache baseline) ===")
    print(format_table(["metric", "dpc", "no cache"],
                       summary_rows(protected, baseline)))
    check(protected, baseline)
    print()
    print("overload bench OK: conservation, correctness, and hit protection hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
