"""Tests for the simulated clock."""

import pytest

from repro.errors import ConfigurationError
from repro.network.clock import SimulatedClock


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_custom_start(self):
        assert SimulatedClock(start=5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedClock(start=-1.0)

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == 2.0

    def test_advance_returns_new_time(self):
        clock = SimulatedClock()
        assert clock.advance(3.0) == 3.0

    def test_advance_by_zero_is_allowed(self):
        clock = SimulatedClock()
        clock.advance(0.0)
        assert clock.now() == 0.0

    def test_negative_advance_rejected(self):
        clock = SimulatedClock()
        with pytest.raises(ConfigurationError):
            clock.advance(-0.1)

    def test_advance_to_moves_forward(self):
        clock = SimulatedClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_advance_to_past_is_noop(self):
        clock = SimulatedClock()
        clock.advance(5.0)
        clock.advance_to(3.0)
        assert clock.now() == 5.0

    def test_reset(self):
        clock = SimulatedClock()
        clock.advance(9.0)
        clock.reset()
        assert clock.now() == 0.0
