"""Tests for the database engine executing the tiny SQL dialect."""

import pytest

from repro.database import Database, schema
from repro.errors import QueryError, SchemaError


@pytest.fixture
def db():
    database = Database("test")
    table = database.create_table(
        schema(
            "products",
            [("pid", "str"), ("category", "str"), ("price", "float")],
        )
    )
    table.create_index("category")
    database.execute("INSERT INTO products (pid, category, price) VALUES ('a', 'books', 10.0)")
    database.execute("INSERT INTO products (pid, category, price) VALUES ('b', 'books', 20.0)")
    database.execute("INSERT INTO products (pid, category, price) VALUES ('c', 'toys', 5.0)")
    return database


class TestDdl:
    def test_duplicate_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table(schema("products", [("x", "int")]))

    def test_drop_table(self, db):
        db.drop_table("products")
        assert not db.has_table("products")
        with pytest.raises(SchemaError):
            db.drop_table("products")

    def test_unknown_table_query(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT * FROM nope")


class TestSelect:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM products")
        assert result.rowcount == 3

    def test_select_columns_projects(self, db):
        result = db.execute("SELECT pid FROM products WHERE category = 'books'")
        assert all(set(row) == {"pid"} for row in result.rows)
        assert {row["pid"] for row in result.rows} == {"a", "b"}

    def test_where_uses_index(self, db):
        result = db.execute("SELECT * FROM products WHERE category = 'books'")
        # Index probe touches only the 2 matching rows, not all 3.
        assert result.rows_touched == 2

    def test_where_pk_lookup(self, db):
        result = db.execute("SELECT * FROM products WHERE pid = 'c'")
        assert result.rowcount == 1
        assert result.rows_touched == 1

    def test_where_scan_touches_everything(self, db):
        result = db.execute("SELECT * FROM products WHERE price > 7.0")
        assert result.rowcount == 2
        assert result.rows_touched == 3

    def test_order_by_desc_and_limit(self, db):
        result = db.execute("SELECT pid FROM products ORDER BY price DESC LIMIT 2")
        assert [row["pid"] for row in result.rows] == ["b", "a"]

    def test_multiple_conditions(self, db):
        result = db.execute(
            "SELECT * FROM products WHERE category = 'books' AND price > 15.0"
        )
        assert [row["pid"] for row in result.rows] == ["b"]

    def test_params_bound_in_order(self, db):
        result = db.execute(
            "SELECT * FROM products WHERE category = ? AND price < ?", ("books", 15.0)
        )
        assert [row["pid"] for row in result.rows] == ["a"]

    def test_param_arity_checked(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT * FROM products WHERE pid = ?", ())
        with pytest.raises(QueryError):
            db.execute("SELECT * FROM products", ("x",))

    def test_unknown_column_rejected(self, db):
        with pytest.raises(SchemaError):
            db.execute("SELECT nope FROM products")


class TestMutations:
    def test_update_via_sql(self, db):
        result = db.execute("UPDATE products SET price = 99.0 WHERE pid = 'a'")
        assert result.rowcount == 1
        assert db.execute("SELECT price FROM products WHERE pid = 'a'").rows[0][
            "price"
        ] == 99.0

    def test_update_all(self, db):
        assert db.execute("UPDATE products SET price = 1.0").rowcount == 3

    def test_delete_via_sql(self, db):
        assert db.execute("DELETE FROM products WHERE category = 'toys'").rowcount == 1
        assert db.execute("SELECT * FROM products").rowcount == 2

    def test_insert_with_params(self, db):
        db.execute(
            "INSERT INTO products (pid, category, price) VALUES (?, ?, ?)",
            ("d", "toys", 3.0),
        )
        assert db.execute("SELECT * FROM products").rowcount == 4


class TestStatistics:
    def test_statement_counter(self, db):
        before = db.statements_executed
        db.execute("SELECT * FROM products")
        assert db.statements_executed == before + 1

    def test_rows_read_written_roll_up(self, db):
        db.reset_counters()
        db.execute("SELECT * FROM products")
        db.execute("UPDATE products SET price = 0.0 WHERE pid = 'a'")
        assert db.total_rows_read() >= 3
        assert db.total_rows_written() == 1

    def test_order_by_handles_mixed_nulls(self):
        database = Database()
        database.create_table(
            schema("t", [("k", "int"), ("v", "str")], nullable=["v"])
        )
        database.execute("INSERT INTO t (k, v) VALUES (1, 'b')")
        database.execute("INSERT INTO t (k, v) VALUES (2, NULL)")
        database.execute("INSERT INTO t (k, v) VALUES (3, 'a')")
        result = database.execute("SELECT k FROM t ORDER BY v")
        assert [row["k"] for row in result.rows] == [2, 3, 1]  # NULLs first
