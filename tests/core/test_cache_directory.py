"""Tests for the cache directory and freeList slot discipline."""

import pytest

from repro.core.cache_directory import CacheDirectory, FreeList
from repro.core.fragments import FragmentID, FragmentMetadata
from repro.core.replacement import FifoPolicy, LruPolicy
from repro.errors import ConfigurationError, DirectoryFullError


def fid(name, **params):
    return FragmentID.create(name, params or None)


META = FragmentMetadata()


class TestFreeList:
    def test_initially_holds_all_keys(self):
        free = FreeList(4)
        assert len(free) == 4
        assert all(k in free for k in range(4))

    def test_pop_fifo_order(self):
        free = FreeList(3)
        assert [free.pop(), free.pop(), free.pop()] == [0, 1, 2]

    def test_pop_empty_raises(self):
        free = FreeList(1)
        free.pop()
        with pytest.raises(DirectoryFullError):
            free.pop()

    def test_push_recycles_at_end(self):
        free = FreeList(2)
        a = free.pop()
        free.pop()
        free.push(a)
        assert free.pop() == a

    def test_double_push_rejected(self):
        free = FreeList(2)
        key = free.pop()
        free.push(key)
        with pytest.raises(ConfigurationError):
            free.push(key)

    def test_out_of_range_push_rejected(self):
        with pytest.raises(ConfigurationError):
            FreeList(2).push(5)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            FreeList(0)


class TestLookupInsert:
    def test_miss_then_hit(self):
        directory = CacheDirectory(8)
        assert directory.lookup(fid("f"), now=0.0) is None
        directory.insert(fid("f"), META, size_bytes=100, now=0.0)
        entry = directory.lookup(fid("f"), now=1.0)
        assert entry is not None
        assert entry.size_bytes == 100
        assert entry.hits == 1

    def test_stats_track_hits_and_misses(self):
        directory = CacheDirectory(8)
        directory.lookup(fid("f"), 0.0)
        directory.insert(fid("f"), META, 10, 0.0)
        directory.lookup(fid("f"), 0.0)
        assert directory.stats.lookups == 2
        assert directory.stats.misses == 1
        assert directory.stats.hits == 1
        assert directory.stats.hit_ratio == 0.5

    def test_distinct_params_distinct_entries(self):
        directory = CacheDirectory(8)
        directory.insert(fid("g", user="bob"), META, 10, 0.0)
        assert directory.lookup(fid("g", user="alice"), 0.0) is None
        assert directory.lookup(fid("g", user="bob"), 0.0) is not None

    def test_keys_allocated_from_free_list(self):
        directory = CacheDirectory(4)
        e1 = directory.insert(fid("a"), META, 1, 0.0)
        e2 = directory.insert(fid("b"), META, 1, 0.0)
        assert e1.dpc_key == 0
        assert e2.dpc_key == 1

    def test_reinsert_over_valid_entry_recycles_key(self):
        directory = CacheDirectory(4)
        e1 = directory.insert(fid("a"), META, 1, 0.0)
        e2 = directory.insert(fid("a"), META, 2, 1.0)
        assert e2.is_valid
        assert directory.valid_count() == 1
        directory.check_invariants()


class TestTtl:
    def test_ttl_expiry_is_lazy(self):
        directory = CacheDirectory(4)
        directory.insert(fid("f"), FragmentMetadata(ttl=10.0), 1, now=0.0)
        assert directory.lookup(fid("f"), now=9.9) is not None
        assert directory.lookup(fid("f"), now=10.0) is None
        assert directory.stats.ttl_expirations == 1

    def test_expired_key_returns_to_free_list(self):
        directory = CacheDirectory(2)
        entry = directory.insert(fid("f"), FragmentMetadata(ttl=5.0), 1, now=0.0)
        directory.lookup(fid("f"), now=6.0)
        assert entry.dpc_key in directory.free_list
        directory.check_invariants()

    def test_expire_stale_sweep(self):
        directory = CacheDirectory(8)
        directory.insert(fid("a"), FragmentMetadata(ttl=5.0), 1, now=0.0)
        directory.insert(fid("b"), FragmentMetadata(ttl=50.0), 1, now=0.0)
        directory.insert(fid("c"), META, 1, now=0.0)
        assert directory.expire_stale(now=10.0) == 1
        assert directory.valid_count() == 2


class TestInvalidation:
    def test_invalidate_flips_and_recycles(self):
        directory = CacheDirectory(4)
        entry = directory.insert(fid("f"), META, 1, 0.0)
        assert directory.invalidate(fid("f"))
        assert not entry.is_valid
        assert entry.dpc_key in directory.free_list
        assert directory.lookup(fid("f"), 0.0) is None

    def test_invalidate_missing_returns_false(self):
        directory = CacheDirectory(4)
        assert not directory.invalidate(fid("nothing"))

    def test_invalidate_twice_is_idempotent(self):
        directory = CacheDirectory(4)
        directory.insert(fid("f"), META, 1, 0.0)
        assert directory.invalidate(fid("f"))
        assert not directory.invalidate(fid("f"))
        directory.check_invariants()

    def test_invalidate_where(self):
        directory = CacheDirectory(8)
        directory.insert(fid("a", u=1), META, 1, 0.0)
        directory.insert(fid("a", u=2), META, 1, 0.0)
        directory.insert(fid("b"), META, 1, 0.0)
        count = directory.invalidate_where(
            lambda entry: entry.fragment_id.name == "a"
        )
        assert count == 2
        assert directory.valid_count() == 1

    def test_invalidate_all(self):
        directory = CacheDirectory(8)
        for i in range(5):
            directory.insert(fid("f", i=i), META, 1, 0.0)
        assert directory.invalidate_all() == 5
        assert directory.valid_count() == 0
        directory.check_invariants()

    def test_key_reuse_after_invalidation(self):
        """§4.3.3's example: key 2 goes back and is later reassigned."""
        directory = CacheDirectory(4)
        directory.insert(fid("a"), META, 1, 0.0)  # key 0
        directory.insert(fid("b"), META, 1, 0.0)  # key 1
        directory.insert(fid("c"), META, 1, 0.0)  # key 2
        directory.invalidate(fid("c"))
        directory.insert(fid("d"), META, 1, 0.0)  # takes key 3 (FIFO)
        entry = directory.insert(fid("e"), META, 1, 0.0)  # recycles key 2
        assert entry.dpc_key == 2
        directory.check_invariants()


class TestReplacement:
    def test_eviction_when_full(self):
        directory = CacheDirectory(2, policy=LruPolicy())
        directory.insert(fid("a"), META, 1, now=0.0)
        directory.insert(fid("b"), META, 1, now=1.0)
        directory.lookup(fid("a"), now=2.0)  # a is now more recent
        directory.insert(fid("c"), META, 1, now=3.0)  # evicts b
        assert directory.lookup(fid("b"), 3.0) is None
        assert directory.lookup(fid("a"), 3.0) is not None
        assert directory.stats.evictions == 1
        directory.check_invariants()

    def test_fifo_policy_evicts_oldest(self):
        directory = CacheDirectory(2, policy=FifoPolicy())
        directory.insert(fid("a"), META, 1, now=0.0)
        directory.insert(fid("b"), META, 1, now=1.0)
        directory.lookup(fid("a"), now=2.0)  # recency is irrelevant to FIFO
        directory.insert(fid("c"), META, 1, now=3.0)
        assert directory.lookup(fid("a"), 3.0) is None

    def test_capacity_never_exceeded(self):
        directory = CacheDirectory(3)
        for i in range(10):
            directory.insert(fid("f", i=i), META, 1, now=float(i))
            assert directory.valid_count() <= 3
            directory.check_invariants()
