"""Overload harness: a Figure 4 testbed run through a flash crowd.

Replays a seeded workload — typically a
:class:`~repro.workload.arrivals.FlashCrowdProcess` burst — through the
standard testbed topology with the overload-protection machinery armed:

* bounded c-server queues in front of the application server and the DBMS
  connection pool (:mod:`repro.overload.queues`), so virtual generation
  time includes queueing delay and saturation produces queue-full
  rejections instead of free service;
* per-request deadlines stamped by the workload generator and propagated
  end to end; a page delivered past its deadline is not a success;
* admission control (:mod:`repro.overload.admission`) and a circuit
  breaker (:mod:`repro.overload.breaker`) applied **only to origin-bound
  misses** — a predicted cache hit is never consulted against either,
  which is the structural form of the "hits are never shed" guarantee;
* page-granularity brown-out serving from a
  :class:`~repro.overload.stale.StalePageCache`, and fragment-granularity
  stale-on-late through the BEM's degrader hook
  (:meth:`repro.core.bem.BackEndMonitor.process_block`).

Every request ends in exactly one of four outcomes — ``fresh``, ``stale``,
``shed``, ``timed_out`` — and the run verifies the conservation law
``fresh + stale + shed + timed_out == offered`` plus a
:class:`~repro.overload.accounting.DropLedger` row for every rejection
path.  Fresh pages are oracle-checked against the caching-disabled
reference; stale pages are counted as correctness *exposure* (never
re-stored, so staleness cannot compound) rather than checked, exactly as
the fault subsystem treats stale fragment bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..core.bem import BackEndMonitor
from ..core.fragments import FragmentID
from ..errors import ConfigurationError, DeadlineExceededError, QueueFullError
from ..faults.degradation import DegradationStats, GracefulDegrader
from ..harness.testbed import Testbed, TestbedConfig
# Re-exported here for backwards compatibility: the nearest-rank helper now
# lives with the other sample statistics in repro.telemetry.stats.
from ..telemetry.stats import percentile
from .accounting import DropLedger
from .admission import AdmissionPolicy
from .breaker import CircuitBreaker
from .queues import BoundedQueue, QueueStats
from .stale import StaleCacheStats, StalePageCache

OUTCOMES = ("fresh", "stale", "shed", "timed_out")


@dataclass
class OverloadConfig:
    """One overload run: a testbed plus the protection machinery's knobs."""

    testbed: TestbedConfig = field(default_factory=lambda: TestbedConfig(mode="dpc"))
    #: Application-server bank: parallel servers and waiting-room size.
    app_servers: int = 2
    app_queue_capacity: int = 32
    #: DBMS connection pool in front of the database share of generation.
    db_servers: int = 4
    db_queue_capacity: int = 64
    #: Fraction of the app waiting room reserved for priority (predicted
    #: cache-hit) arrivals; 0 gives plain FIFO.
    reserve_fraction: float = 0.25
    #: Relative per-request deadline (copied onto the testbed config so the
    #: workload generator stamps it); ``None`` disables deadlines.
    deadline_s: Optional[float] = None
    #: Admission policy applied to origin-bound misses (``None``: admit all).
    policy: Optional[AdmissionPolicy] = None
    #: Circuit breaker toward the origin (``None``: never brown out).
    breaker: Optional[CircuitBreaker] = None
    #: Brown-out page cache (DPC mode only; the no-cache baseline has no
    #: proxy to hold last-known-good pages).
    serve_stale_pages: bool = True
    stale_capacity: int = 256
    stale_max_age_s: Optional[float] = None
    #: Stale-while-revalidate grace window for the BEM's fragment-level
    #: stale-on-late fallback (0 disables it).
    grace_s: float = 5.0
    #: Time-series resolution: requests per bucket.
    bucket_requests: int = 50
    #: Oracle-check every Nth fresh page (0 disables the check).
    correctness_every: int = 1
    seed: int = 7

    def __post_init__(self) -> None:
        if self.testbed.mode not in ("dpc", "no_cache"):
            raise ConfigurationError(
                "overload harness compares mode='dpc' against mode='no_cache'"
            )
        if self.bucket_requests <= 0:
            raise ConfigurationError("bucket_requests must be positive")
        if self.correctness_every < 0:
            raise ConfigurationError("correctness_every cannot be negative")
        if self.deadline_s is not None:
            # Private copy: the caller's TestbedConfig must not inherit
            # this run's deadline.
            self.testbed = replace(self.testbed, deadline_s=self.deadline_s)


@dataclass
class OverloadBucket:
    """One time-series point: counters over ``bucket_requests`` requests."""

    index: int
    start_request: int
    start_time: float
    requests: int = 0
    fresh: int = 0
    stale: int = 0
    shed: int = 0
    timed_out: int = 0
    #: App-queue waiting-room depth observed when the bucket closed.
    queue_depth: int = 0
    response_times: List[float] = field(default_factory=list)

    @property
    def completed(self) -> int:
        """Requests that received some page (fresh or stale)."""
        return self.fresh + self.stale

    @property
    def p50(self) -> float:
        """Median response time of pages delivered in this bucket."""
        return percentile(self.response_times, 0.50)

    @property
    def p99(self) -> float:
        """Tail response time of pages delivered in this bucket."""
        return percentile(self.response_times, 0.99)


@dataclass
class OverloadResult:
    """Everything one overload run measured."""

    mode: str
    offered: int = 0
    warmup_requests: int = 0
    completed_fresh: int = 0
    completed_stale: int = 0
    shed: int = 0
    timed_out: int = 0
    #: Predicted cache-hit requests that ended shed — the acceptance bar
    #: requires this to stay exactly zero.
    hits_shed: int = 0
    predicted_hits: int = 0
    predicted_misses: int = 0
    buckets: List[OverloadBucket] = field(default_factory=list)
    #: Post-warmup response times of delivered pages.
    response_times: List[float] = field(default_factory=list)
    pages_checked: int = 0
    incorrect_pages: int = 0
    ledger: DropLedger = field(default_factory=DropLedger)
    app_queue: Optional[QueueStats] = None
    db_queue: Optional[QueueStats] = None
    degradation: Optional[DegradationStats] = None
    stale_cache: Optional[StaleCacheStats] = None
    breaker_opens: int = 0
    policy_shed: int = 0

    @property
    def completed(self) -> int:
        """Requests that received some page (fresh or stale)."""
        return self.completed_fresh + self.completed_stale

    @property
    def conserved(self) -> bool:
        """The outcome classes tile the offered traffic exactly."""
        return self.completed + self.shed + self.timed_out == self.offered

    def check_conservation(self) -> None:
        """Raise if any request was dropped without a named outcome."""
        if not self.conserved:
            raise ConfigurationError(
                "conservation violated: %d fresh + %d stale + %d shed + "
                "%d timed out != %d offered"
                % (
                    self.completed_fresh, self.completed_stale, self.shed,
                    self.timed_out, self.offered,
                )
            )

    def p50(self) -> float:
        """Median post-warmup response time of delivered pages."""
        return percentile(self.response_times, 0.50)

    def p99(self) -> float:
        """Tail post-warmup response time of delivered pages."""
        return percentile(self.response_times, 0.99)

    def series(self) -> List[Tuple[float, int, int, int, int, float]]:
        """(start_time, completed, shed, timed_out, depth, p99) rows."""
        return [
            (b.start_time, b.completed, b.shed, b.timed_out, b.queue_depth, b.p99)
            for b in self.buckets
        ]


class OverloadHarness:
    """Runs one workload through the overload-protected pipeline."""

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self.testbed = Testbed(config.testbed)
        discipline = "priority" if config.reserve_fraction > 0 else "fifo"
        self.app_queue = BoundedQueue(
            "app-server",
            capacity=config.app_queue_capacity,
            servers=config.app_servers,
            discipline=discipline,
            reserve_fraction=config.reserve_fraction,
        )
        self.db_queue = BoundedQueue(
            "db-pool",
            capacity=config.db_queue_capacity,
            servers=config.db_servers,
        )
        self.testbed.server.queue = self.app_queue
        self.testbed.server.db_queue = self.db_queue
        self.policy = config.policy
        self.breaker = config.breaker
        self.ledger = DropLedger()
        self.degrader: Optional[GracefulDegrader] = None
        self.stale_cache: Optional[StalePageCache] = None
        monitor = self.testbed.monitor
        if isinstance(monitor, BackEndMonitor):
            self.degrader = GracefulDegrader(bem=monitor, grace_s=config.grace_s)
            monitor.attach_degrader(self.degrader)
            if config.serve_stale_pages:
                self.stale_cache = StalePageCache(
                    capacity=config.stale_capacity,
                    max_age_s=config.stale_max_age_s,
                )
        self._current: Optional[OverloadBucket] = None
        self._fresh_pages = 0  # drives the every-Nth oracle check
        self._stale_serves_mark = 0
        #: Per-request observers, called as ``observer(index, timed,
        #: outcome, predicted_hit)`` after each request is accounted.  The
        #: doctor CLI uses these to feed SLO sample streams; the harness
        #: itself stays SLO-unaware.
        self.request_observers: List = []

    # -- the run loop --------------------------------------------------------

    def run(self) -> OverloadResult:
        """Replay the workload through the protected pipeline."""
        tb, config = self.testbed, self.config
        total = config.testbed.warmup_requests + config.testbed.requests
        workload = tb.build_workload().materialize(total)
        result = OverloadResult(
            mode=config.testbed.mode,
            warmup_requests=config.testbed.warmup_requests,
        )

        for index, timed in enumerate(workload):
            if index % config.bucket_requests == 0:
                self._open_bucket(result, index)
            tb.clock.advance_to(timed.at)
            for hook in tb.pre_request_hooks:
                hook(tb, index, timed)
            tb._churn_fragments(timed.request)
            outcome, html, predicted_hit = self._serve(timed)
            self._account(result, index, timed, outcome, html, predicted_hit)
            if outcome in ("shed", "timed_out"):
                self._note_shed_fragments(timed.request)
            for observer in self.request_observers:
                observer(index, timed, outcome, predicted_hit)
            if self.degrader is not None:
                self.degrader.revalidate_due()

        self._close_bucket(result)
        self.ledger.sync_channel(tb.origin_link)
        result.ledger = self.ledger
        result.app_queue = self.app_queue.stats
        result.db_queue = self.db_queue.stats
        if self.degrader is not None:
            result.degradation = self.degrader.stats
        if self.stale_cache is not None:
            result.stale_cache = self.stale_cache.stats
        if self.breaker is not None:
            result.breaker_opens = self.breaker.stats.opens
        if self.policy is not None:
            result.policy_shed = self.policy.shed
        result.check_conservation()
        return result

    # -- per-request overload-aware pipeline ---------------------------------

    def _serve(self, timed) -> Tuple[str, Optional[str], bool]:
        """One request through the protected pipeline, under a trace root.

        With tracing enabled the whole decision — hit prediction, breaker,
        admission, the actual serve, degradation — happens inside one
        ``request`` span, annotated afterwards with the outcome class.
        """
        with self.testbed.tracer.request_span(
            timed.request, harness="overload"
        ) as root:
            outcome, html, predicted_hit = self._serve_inner(timed)
            root.annotate(outcome=outcome, predicted_hit=predicted_hit)
            return outcome, html, predicted_hit

    def _serve_inner(self, timed) -> Tuple[str, Optional[str], bool]:
        tb = self.testbed
        request = timed.request
        arrival = timed.at
        now = tb.clock.now()
        with tb.tracer.span("dpc.lookup") as lookup:
            predicted_hit = self._predicted_full_hit(request)
            lookup.annotate(predicted_hit=predicted_hit)
        if predicted_hit:
            request = replace(request, priority=1)
        gated = not predicted_hit and tb.dpc is not None
        breaker_granted = False
        if gated and self.breaker is not None:
            if not self.breaker.allow(now):
                # Brown-out: the breaker holds origin-bound regeneration work.
                if self.degrader is not None:
                    self.degrader.record_brownout()
                outcome, html = self._degrade(request, now, "breaker_open")
                return outcome, html, predicted_hit
            breaker_granted = True
        if gated and self.policy is not None and not self.policy.admit(
            now, self.app_queue.depth(arrival), self.app_queue.expected_wait(arrival)
        ):
            if breaker_granted:
                # The trip never happened: hand back the (possibly
                # half-open probe) slot so the breaker cannot wedge on a
                # phantom in-flight probe.
                self.breaker.release(now)
            outcome, html = self._degrade(request, now, "policy_shed")
            return outcome, html, predicted_hit

        try:
            html = tb.serve_once(request)
        except QueueFullError:
            if gated and self.breaker is not None:
                self.breaker.record_failure(tb.clock.now())
            outcome, html = self._degrade(request, tb.clock.now(), "queue_full")
            return outcome, html, predicted_hit
        except DeadlineExceededError:
            # Screened out at the origin door: service could not have
            # started before the deadline.  No script ran, nothing desyncs.
            if gated and self.breaker is not None:
                self.breaker.record_failure(tb.clock.now())
            outcome, html = self._degrade(
                request, tb.clock.now(), "deadline_exceeded"
            )
            return outcome, html, predicted_hit

        now = tb.clock.now()
        late = request.deadline_at is not None and now > request.deadline_at
        if gated and self.breaker is not None:
            if late:
                self.breaker.record_failure(now)
            else:
                self.breaker.record_success(now)
        stale_fragments = self._stale_fragments_served(timed)
        if late:
            # A page past its deadline is not a success, even when stale
            # fragments were leaned on along the way.  The template still
            # reached the DPC (the cache stays warm) but the client-visible
            # page goes through the deadline path.
            outcome, html = self._degrade(request, now, "deadline_exceeded")
            return outcome, html, predicted_hit
        if stale_fragments:
            # The BEM's deadline-pressure path substituted stale fragments;
            # the page is delivered but counts as correctness exposure.
            return "stale", html, predicted_hit
        return "fresh", html, predicted_hit

    def _degrade(
        self, request, now: float, reason: str
    ) -> Tuple[str, Optional[str]]:
        """Stale fallback if possible, else a named drop.

        The ledger counts only requests that got *nothing* — a stale serve
        is a degraded success, accounted through the degradation stats.
        """
        if self.stale_cache is not None:
            html = self.stale_cache.serve_stale(request.url, now)
            if html is not None:
                if self.degrader is not None:
                    self.degrader.record_stale_page(len(html.encode("utf-8")))
                return "stale", html
        self.ledger.record(reason)
        if self.degrader is not None:
            self.degrader.record_failure()
        return ("timed_out" if reason == "deadline_exceeded" else "shed"), None

    def _predicted_full_hit(self, request) -> bool:
        """Whether every cacheable fragment of this page is fresh in the BEM.

        This is the proxy-side hit predictor: it uses only non-mutating
        directory peeks, so prediction never perturbs TTL bookkeeping.  A
        page with no cacheable fragments is origin-bound by definition.
        """
        monitor = self.testbed.monitor
        if not isinstance(monitor, BackEndMonitor):
            return False
        params = self.config.testbed.synthetic
        page_id = int(request.param("pageID", "0"))
        now = self.testbed.clock.now()
        saw_cacheable = False
        for pool_index in params.pool_indexes_for_page(page_id):
            if not params.is_cacheable(pool_index):
                continue
            saw_cacheable = True
            entry = monitor.directory.peek(
                FragmentID.create("frag", {"id": pool_index})
            )
            if entry is None or not entry.is_valid or not entry.fresh(now):
                return False
        return saw_cacheable

    def _note_shed_fragments(self, request) -> None:
        """Tell the insight ledger which refill opportunities were shed.

        A shed (or screened-out) request would have regenerated every
        cacheable fragment of its page that is currently absent or unfresh;
        with a miss-cause ledger attached to the directory
        (:meth:`repro.core.cache_directory.CacheDirectory.attach_insight`),
        the *next* miss on each of those fragments is attributed to
        ``shed_overload`` instead of whatever removed it.  Fragments still
        fresh are untouched — sheds never concern them — and without an
        attached ledger this is a no-op.
        """
        monitor = self.testbed.monitor
        if not isinstance(monitor, BackEndMonitor):
            return
        insight = monitor.directory.insight
        if insight is None:
            return
        params = self.config.testbed.synthetic
        page_id = int(request.param("pageID", "0"))
        now = self.testbed.clock.now()
        for pool_index in params.pool_indexes_for_page(page_id):
            if not params.is_cacheable(pool_index):
                continue
            fragment_id = FragmentID.create("frag", {"id": pool_index})
            entry = monitor.directory.peek(fragment_id)
            if entry is None or not entry.is_valid or not entry.fresh(now):
                insight.note_shed(fragment_id.canonical())

    def _stale_fragments_served(self, timed) -> bool:
        """Whether the request just served consumed any stale fragments."""
        monitor = self.testbed.monitor
        if not isinstance(monitor, BackEndMonitor):
            return False
        served = monitor.stats.stale_fragment_serves
        delta = served - self._stale_serves_mark
        self._stale_serves_mark = served
        return delta > 0

    # -- accounting ----------------------------------------------------------

    def _account(
        self, result: OverloadResult, index: int, timed, outcome, html,
        predicted_hit: bool,
    ) -> None:
        tb, config = self.testbed, self.config
        bucket = self._current
        measuring = index >= config.testbed.warmup_requests
        result.offered += 1
        bucket.requests += 1
        if predicted_hit:
            result.predicted_hits += 1
        else:
            result.predicted_misses += 1
        if outcome in ("fresh", "stale"):
            elapsed = tb.clock.now() - timed.at
            bucket.response_times.append(elapsed)
            if measuring:
                result.response_times.append(elapsed)
            tb.tracer.annotate_last(elapsed_s=elapsed)
        if outcome == "fresh":
            result.completed_fresh += 1
            bucket.fresh += 1
            self._fresh_pages += 1
            if (
                config.correctness_every
                and self._fresh_pages % config.correctness_every == 0
            ):
                result.pages_checked += 1
                if html != tb.render_oracle(timed.request):
                    result.incorrect_pages += 1
            if self.stale_cache is not None:
                # Only pages that came through the normal pipeline are
                # remembered, so brown-out staleness cannot compound.
                self.stale_cache.put(timed.request.url, html, tb.clock.now())
        elif outcome == "stale":
            result.completed_stale += 1
            bucket.stale += 1
        elif outcome == "shed":
            result.shed += 1
            bucket.shed += 1
            if predicted_hit:
                result.hits_shed += 1
        else:
            result.timed_out += 1
            bucket.timed_out += 1

    def _open_bucket(self, result: OverloadResult, index: int) -> None:
        self._close_bucket(result)
        self._current = OverloadBucket(
            index=len(result.buckets),
            start_request=index,
            start_time=self.testbed.clock.now(),
        )

    def _close_bucket(self, result: OverloadResult) -> None:
        if self._current is None:
            return
        self._current.queue_depth = self.app_queue.depth(self.testbed.clock.now())
        result.buckets.append(self._current)
        self._current = None


def run_overload(config: OverloadConfig) -> OverloadResult:
    """Convenience one-shot: build the harness, run it, return the result."""
    return OverloadHarness(config).run()
