#!/usr/bin/env python
"""A flash crowd hits a dynamic site: graceful brown-out vs collapse.

A quiet site (6 req/s) takes a 10x traffic spike.  The same seeded
workload is replayed twice:

* **no cache** — every page regenerates at the origin; the bounded
  application-server queue saturates, requests are rejected queue-full or
  blow their deadline, and tail latency explodes;
* **DPC** — cache hits bypass the origin entirely, admission control
  (CoDel) sheds only origin-bound misses, a circuit breaker brown-outs to
  last-known-good pages, and predicted hits are *never* shed.

Run:  python examples/flash_crowd.py
"""

from repro.harness.reporting import drops_table
from repro.harness.testbed import TestbedConfig
from repro.overload import CircuitBreaker, CoDelPolicy, OverloadConfig, run_overload
from repro.sites.synthetic import SyntheticParams
from repro.workload import FlashCrowdProcess

DEADLINE_S = 1.5


def run(mode):
    params = SyntheticParams(
        num_pages=10, fragments_per_page=4, fragment_size=2048,
        cacheability=0.75,
    )
    testbed = TestbedConfig(
        mode=mode, synthetic=params, target_hit_ratio=0.9,
        requests=250, warmup_requests=50,
        arrivals=FlashCrowdProcess(
            base_rate=6.0, multiplier=10.0, burst_at=10.0,
            hold_s=5.0, decay_s=2.0, deterministic=True,
        ),
    )
    dpc_mode = mode == "dpc"
    config = OverloadConfig(
        testbed=testbed,
        deadline_s=DEADLINE_S,
        policy=CoDelPolicy(target_s=0.05, interval_s=0.5) if dpc_mode else None,
        breaker=CircuitBreaker(failure_threshold=5, open_s=1.0)
        if dpc_mode else None,
        bucket_requests=50,
        correctness_every=1 if dpc_mode else 0,
    )
    return run_overload(config)


def describe(label, result):
    print("--- %s ---" % label)
    print("  offered     %4d" % result.offered)
    print("  fresh       %4d" % result.completed_fresh)
    print("  stale       %4d" % result.completed_stale)
    print("  shed        %4d" % result.shed)
    print("  timed out   %4d" % result.timed_out)
    print("  hits shed   %4d" % result.hits_shed)
    print("  p50 / p99   %.3fs / %.3fs" % (result.p50(), result.p99()))
    print(drops_table(result.ledger))
    print()


def main():
    print("=== flash crowd: 10x burst against a 6 req/s site ===\n")

    baseline = run("no_cache")
    describe("no cache: the origin takes the full burst", baseline)

    protected = run("dpc")
    describe("dpc: hits bypass the origin, misses are policed", protected)

    print("=== verdict ===")
    failed = baseline.shed + baseline.timed_out
    print("  no cache: %d of %d requests got no page in time — collapse"
          % (failed, baseline.offered))
    print("  dpc: %d of %d delivered (%d stale), hits shed: %d — graceful"
          % (protected.completed, protected.offered,
             protected.completed_stale, protected.hits_shed))
    print("  dpc p99 %.3fs stayed under the %.1fs deadline; %d pages"
          % (protected.p99(), DEADLINE_S, protected.pages_checked))
    print("  oracle-checked, %d incorrect" % protected.incorrect_pages)

    assert protected.conserved and baseline.conserved
    assert protected.incorrect_pages == 0
    assert protected.hits_shed == 0


if __name__ == "__main__":
    main()
