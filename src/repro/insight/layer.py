"""The insight layer: one attachable bundle of ledger + profiler.

:class:`InsightLayer` is what a deployment actually attaches: it fans the
directory's lifecycle hooks out to the miss-cause ledger
(:mod:`repro.insight.ledger`) and the reuse-distance profiler
(:mod:`repro.insight.mattson`), collects eviction diagnostics from the
replacement policy, and publishes everything as ``insight.*`` registry
rows.  Attachment is duck-typed the same way the BEM's degrader hook is:
the core caches know only that *something* with ``record_access`` /
``record_removal`` / ``record_insert`` methods may be present, so
``repro.core`` stays import-independent of this package and unattached
deployments pay one ``is None`` check per lookup.

Which removal reasons feed the profiler matters: TTL expiry, data
invalidation, and fault quarantine are *content* events — they would have
happened at any cache size, so the counterfactual must replay them.
Capacity evictions are exactly what the counterfactual varies, so they are
deliberately **not** profiler events (a bigger cache would not have
evicted); they still feed the ledger, which attributes the real run's
misses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ledger import MissCauseLedger
from .mattson import ReuseDistanceProfiler

#: Removal reasons replayed into the counterfactual profiler.
CONTENT_INVALIDATION_REASONS = frozenset(
    ("ttl_expired", "data_invalidated", "fault_quarantine")
)


class InsightLayer:
    """Ledger + profiler + eviction diagnostics behind one attachment."""

    def __init__(
        self, keep_events: bool = False, profile: bool = True
    ) -> None:
        self.ledger = MissCauseLedger()
        self.profiler: Optional[ReuseDistanceProfiler] = (
            ReuseDistanceProfiler(keep_events=keep_events) if profile else None
        )
        #: Eviction diagnostics accumulated via the replacement policy's
        #: :meth:`~repro.core.replacement.ReplacementPolicy.record_victim`.
        self.eviction_victims = 0
        self.eviction_idle_s_total = 0.0
        self.eviction_hits_total = 0
        self.eviction_bytes_total = 0
        #: DPC generation wipes observed (each one voids every slot).
        self.dpc_wipes = 0

    # -- directory hooks ----------------------------------------------------

    def record_access(self, canonical: str, hit: bool) -> None:
        """One directory lookup outcome (called by ``CacheDirectory``)."""
        self.ledger.record_access(canonical, hit)
        if self.profiler is not None:
            self.profiler.on_access(canonical)

    def record_removal(self, canonical: str, reason: str) -> None:
        """One entry removal, with its cause (called by ``CacheDirectory``)."""
        self.ledger.record_removal(canonical, reason)
        if (
            self.profiler is not None
            and reason in CONTENT_INVALIDATION_REASONS
        ):
            self.profiler.on_invalidate(canonical)

    def record_insert(self, canonical: str) -> None:
        """One entry insertion (called by ``CacheDirectory``)."""
        self.ledger.record_insert(canonical)

    # -- satellite hooks -----------------------------------------------------

    def record_eviction(
        self, policy_name: str, idle_s: float, hits: int, size_bytes: int
    ) -> None:
        """Victim diagnostics from the replacement policy."""
        self.eviction_victims += 1
        self.eviction_idle_s_total += max(0.0, idle_s)
        self.eviction_hits_total += hits
        self.eviction_bytes_total += size_bytes

    def note_shed(self, canonical: str) -> None:
        """Overload protection shed this fragment's refill opportunity."""
        self.ledger.note_shed(canonical)

    def record_dpc_wipe(self, epoch: int) -> None:
        """The DPC cleared its slot array (restart / epoch bump)."""
        self.dpc_wipes += 1

    # -- wiring --------------------------------------------------------------

    def attach(self, bem=None, directory=None, dpc=None) -> "InsightLayer":
        """Wire this layer into a deployment; returns self for chaining.

        ``bem``/``directory``/``dpc`` are duck-typed; pass whichever exist.
        Passing a BEM attaches its directory (and replacement policy); a
        DPC attaches the wipe hook.
        """
        if bem is not None:
            bem.attach_insight(self)
        if directory is not None:
            directory.attach_insight(self)
        if dpc is not None:
            dpc.attach_insight(self)
        return self

    # -- reading -------------------------------------------------------------

    def mean_eviction_idle_s(self) -> float:
        """Mean idle time of eviction victims (0.0 when none)."""
        if self.eviction_victims == 0:
            return 0.0
        return self.eviction_idle_s_total / self.eviction_victims

    def check_invariants(self, directory=None) -> None:
        """Assert the sum-to-misses invariant (see the ledger docs)."""
        self.ledger.check_invariants(directory)

    def metric_rows(self) -> List[Tuple[str, object]]:
        """Registry rows: ledger + profiler + eviction + wipe counters."""
        rows = self.ledger.metric_rows()
        if self.profiler is not None:
            rows.extend(self.profiler.metric_rows())
        rows.append(("insight.eviction.victims", self.eviction_victims))
        rows.append(
            ("insight.eviction.mean_idle_s", round(self.mean_eviction_idle_s(), 4))
        )
        rows.append(("insight.dpc.wipes", self.dpc_wipes))
        return rows
