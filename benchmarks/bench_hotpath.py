"""End-to-end fast-lane throughput benchmark and CI regression gate.

Thin wrapper around :mod:`repro.perf.hotpath` / :mod:`repro.bench`:

    python benchmarks/bench_hotpath.py              # full measurement
    python benchmarks/bench_hotpath.py --smoke      # CI gate vs BENCH_HOTPATH.json
    python benchmarks/bench_hotpath.py --record     # refresh the baseline

The smoke gate fails (exit 1) when the lower-quartile fast-vs-reference
speedup drops more than 10% below the committed smoke baseline in
``BENCH_HOTPATH.json`` — see docs/PERFORMANCE.md for how to read the file.
"""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench import main as bench_main  # noqa: E402 - after sys.path setup


def main(argv=None):
    """Run the hotpath benchmark via the uniform runner."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    default_json = os.path.join(_ROOT, "BENCH_HOTPATH.json")
    if "--json" not in arguments:
        arguments += ["--json", default_json]
    return bench_main(["hotpath"] + arguments)


if __name__ == "__main__":
    sys.exit(main())
