"""The paper's contribution: granular proxy-based caching of dynamic content.

Run-time flow (reverse-proxy configuration, Figure 4):

1. A request reaches the application server; the dynamic script runs.
2. At each tagged code block, the :class:`BackEndMonitor` probes its cache
   directory: hit -> ``GET`` tag, miss -> run the block, allocate a dpcKey,
   ``SET`` tag with the content.
3. The serialized template crosses the origin link (small when warm).
4. The :class:`DynamicProxyCache` scans the template (KMP, one pass),
   executes the instructions against its slot array, and delivers the
   assembled page.
"""

from .bem import BackEndMonitor, BemStats, ObjectCache
from .cache_directory import (
    CacheDirectory,
    DirectoryEntry,
    DirectoryStats,
    FreeList,
    RepairReport,
)
from .coherency import ProxyGroup
from .dpc import AssembledPage, DpcStats, DynamicProxyCache
from .fragments import Dependency, Fragment, FragmentID, FragmentMetadata
from .invalidation import InvalidationManager
from .replacement import (
    FifoPolicy,
    GreedyDualSizePolicy,
    LfuPolicy,
    LruPolicy,
    ReplacementPolicy,
    TtlAwarePolicy,
    make_policy,
)
from .routing import ConsistentHashRing, RequestRouter
from .scanner import TagScanner, failure_function, kmp_find, kmp_find_all
from .tagging import BlockTag, PageBuilder, PageBuildStats, TagRegistry
from .template import (
    DEFAULT_CONFIG,
    GetInstruction,
    Instruction,
    Literal,
    SetInstruction,
    Template,
    TemplateConfig,
    parse_template,
)

__all__ = [
    "BackEndMonitor",
    "BemStats",
    "ObjectCache",
    "CacheDirectory",
    "DirectoryEntry",
    "DirectoryStats",
    "FreeList",
    "RepairReport",
    "ProxyGroup",
    "DynamicProxyCache",
    "DpcStats",
    "AssembledPage",
    "Dependency",
    "Fragment",
    "FragmentID",
    "FragmentMetadata",
    "InvalidationManager",
    "ReplacementPolicy",
    "LruPolicy",
    "LfuPolicy",
    "FifoPolicy",
    "GreedyDualSizePolicy",
    "TtlAwarePolicy",
    "make_policy",
    "ConsistentHashRing",
    "RequestRouter",
    "TagScanner",
    "failure_function",
    "kmp_find",
    "kmp_find_all",
    "TagRegistry",
    "BlockTag",
    "PageBuilder",
    "PageBuildStats",
    "Template",
    "TemplateConfig",
    "DEFAULT_CONFIG",
    "Literal",
    "GetInstruction",
    "SetInstruction",
    "Instruction",
    "parse_template",
]
