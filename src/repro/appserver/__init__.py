"""Application-server substrate (stands in for IIS + ASP / WebLogic + JSP).

Executes dynamic scripts through an MVC-shaped layering, resolves sessions,
and — when a BEM is attached — runs the paper's run-time protocol at every
tagged code block.
"""

from .http import (
    DEFAULT_REQUEST_HEADER_BYTES,
    DEFAULT_RESPONSE_HEADER_BYTES,
    HttpRequest,
    HttpResponse,
)
from .mvc import (
    BusinessComponent,
    ComponentRegistry,
    DataAccessor,
    TierAccounting,
    View,
)
from .scripts import (
    DynamicScript,
    ScriptContext,
    ScriptRegistry,
    SiteServices,
)
from .server import ApplicationServer
from .session import Session, SessionManager

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "DEFAULT_REQUEST_HEADER_BYTES",
    "DEFAULT_RESPONSE_HEADER_BYTES",
    "ComponentRegistry",
    "BusinessComponent",
    "DataAccessor",
    "View",
    "TierAccounting",
    "DynamicScript",
    "ScriptContext",
    "ScriptRegistry",
    "SiteServices",
    "ApplicationServer",
    "Session",
    "SessionManager",
]
