"""Property: the cache directory's slot discipline holds under any
operation sequence (invariant 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache_directory import CacheDirectory
from repro.core.fragments import FragmentID, FragmentMetadata
from repro.core.replacement import make_policy

FRAGMENT_NAMES = ["a", "b", "c", "d", "e", "f", "g", "h"]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.sampled_from(FRAGMENT_NAMES),
                  st.floats(0, 100)),
        st.tuples(st.just("lookup"), st.sampled_from(FRAGMENT_NAMES),
                  st.floats(0, 100)),
        st.tuples(st.just("invalidate"), st.sampled_from(FRAGMENT_NAMES),
                  st.floats(0, 100)),
        st.tuples(st.just("expire"), st.just(""), st.floats(0, 200)),
    ),
    max_size=60,
)


def apply_ops(directory, ops):
    now = 0.0
    for op, name, t in ops:
        now = max(now, t)  # time is monotone
        if op == "insert":
            directory.insert(
                FragmentID.create(name), FragmentMetadata(ttl=25.0), 10, now
            )
        elif op == "lookup":
            directory.lookup(FragmentID.create(name), now)
        elif op == "invalidate":
            directory.invalidate(FragmentID.create(name))
        elif op == "expire":
            directory.expire_stale(now)
        directory.check_invariants()


@given(operations, st.integers(1, 6), st.sampled_from(["lru", "lfu", "fifo", "ttl", "gds"]))
@settings(max_examples=200)
def test_slot_discipline_under_random_ops(ops, capacity, policy):
    """Every dpcKey is either free or backing exactly one valid entry,
    regardless of operation order, capacity pressure, or policy."""
    directory = CacheDirectory(capacity, policy=make_policy(policy))
    apply_ops(directory, ops)
    # Final deep check.
    directory.check_invariants()
    assert directory.valid_count() <= capacity
    assert directory.valid_count() + len(directory.free_list) == capacity


@given(operations)
def test_stats_are_consistent(ops):
    directory = CacheDirectory(4)
    apply_ops(directory, ops)
    stats = directory.stats
    assert stats.hits + stats.misses == stats.lookups
    assert 0.0 <= stats.hit_ratio <= 1.0


@given(operations, st.integers(1, 4))
def test_valid_entries_have_unique_keys(ops, capacity):
    directory = CacheDirectory(capacity)
    apply_ops(directory, ops)
    keys = [entry.dpc_key for entry in directory.valid_entries()]
    assert len(keys) == len(set(keys))
