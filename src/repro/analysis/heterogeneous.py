"""The general form of the Section 5 model: explicit per-page fragment sets.

Table 1 defines pages over a shared fragment pool — ``E_i ⊆ E`` with a
many-to-many mapping — and ``B = Σ_i S(c_i) · n_i(t)``.  The homogeneous
shortcut in :mod:`repro.analysis.model` (every page = k identical
fragments) is exact for the paper's parameter sweeps, but the general form
matters when composition correlates with popularity: a site whose *hot*
pages are highly cacheable saves far more than the homogeneous average
suggests, and vice versa.  The composition ablation bench quantifies that.

``FragmentSpec``/``PageSpec`` mirror the paper's E and C sets directly.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..workload.zipf import ZipfDistribution
from .model import fragment_bytes_cached
from .params import AnalysisParams


@dataclass(frozen=True)
class FragmentSpec:
    """One element of E: a fragment with a size and design-time X_j."""

    name: str
    size: float
    cacheable: bool = True

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ConfigurationError("fragment size cannot be negative")


@dataclass(frozen=True)
class PageComposition:
    """One element of C: a page as an ordered list of fragment names.

    Fragment *sharing* across pages is expressed by repeating names — the
    many-to-many mapping of the paper's model.  (For expected-bytes math
    the sharing does not change S_c, but it is what makes real hit ratios
    achievable, so workload-level tooling consumes it too.)
    """

    name: str
    fragment_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.fragment_names:
            raise ConfigurationError("page %r has no fragments" % self.name)


class Application:
    """The (E, C) pair plus header/tag parameters: a full model instance."""

    def __init__(
        self,
        fragments: Sequence[FragmentSpec],
        pages: Sequence[PageComposition],
        header_bytes: float = 500.0,
        tag_size: float = 10.0,
        zipf_alpha: float = 1.0,
    ) -> None:
        if not fragments or not pages:
            raise ConfigurationError("need at least one fragment and one page")
        self._fragments: Dict[str, FragmentSpec] = {}
        for fragment in fragments:
            if fragment.name in self._fragments:
                raise ConfigurationError(
                    "duplicate fragment %r" % fragment.name
                )
            self._fragments[fragment.name] = fragment
        self.pages = list(pages)
        for page in self.pages:
            for name in page.fragment_names:
                if name not in self._fragments:
                    raise ConfigurationError(
                        "page %r uses unknown fragment %r" % (page.name, name)
                    )
        self.header_bytes = header_bytes
        self.tag_size = tag_size
        self.zipf = ZipfDistribution(len(self.pages), alpha=zipf_alpha)

    # -- per-page response sizes -------------------------------------------------

    def fragment(self, name: str) -> FragmentSpec:
        """Look up one pool fragment by name."""
        return self._fragments[name]

    def page_size_no_cache(self, page: PageComposition) -> float:
        """S_NC(c_i) = Σ s_ej + f."""
        return (
            sum(self._fragments[n].size for n in page.fragment_names)
            + self.header_bytes
        )

    def page_size_cached(self, page: PageComposition, hit_ratio: float) -> float:
        """S_C(c_i) with the paper's per-fragment expected costs."""
        total = self.header_bytes
        for name in page.fragment_names:
            fragment = self._fragments[name]
            total += fragment_bytes_cached(
                fragment.size, hit_ratio, self.tag_size, fragment.cacheable
            )
        return total

    # -- expected bytes over an interval -------------------------------------------

    def expected_bytes_no_cache(self, requests: int) -> float:
        """B_NC = sum_i S_NC(c_i) * P(i) * R over this application."""
        return sum(
            self.page_size_no_cache(page) * self.zipf.pmf(rank) * requests
            for rank, page in enumerate(self.pages, start=1)
        )

    def expected_bytes_cached(self, requests: int, hit_ratio: float) -> float:
        """B_C = sum_i S_C(c_i) * P(i) * R over this application."""
        return sum(
            self.page_size_cached(page, hit_ratio)
            * self.zipf.pmf(rank)
            * requests
            for rank, page in enumerate(self.pages, start=1)
        )

    def bytes_ratio(self, hit_ratio: float, requests: int = 1_000_000) -> float:
        """B_C / B_NC at the given hit ratio."""
        return self.expected_bytes_cached(requests, hit_ratio) / (
            self.expected_bytes_no_cache(requests)
        )

    def savings_percent(self, hit_ratio: float) -> float:
        """Percentage savings in expected bytes served."""
        return (1.0 - self.bytes_ratio(hit_ratio)) * 100.0

    # -- structure metrics -----------------------------------------------------------

    def cacheability_factor(self) -> float:
        """Fraction of pool fragments that are cacheable (design-time)."""
        cacheable = sum(1 for f in self._fragments.values() if f.cacheable)
        return cacheable / len(self._fragments)

    def traffic_weighted_cacheability(self) -> float:
        """Cacheable *byte* fraction as traffic actually sees it —
        popularity-weighted over page compositions.  When this diverges
        from :meth:`cacheability_factor`, the homogeneous model misleads.
        """
        weighted_cacheable = 0.0
        weighted_total = 0.0
        for rank, page in enumerate(self.pages, start=1):
            weight = self.zipf.pmf(rank)
            for name in page.fragment_names:
                fragment = self._fragments[name]
                weighted_total += weight * fragment.size
                if fragment.cacheable:
                    weighted_cacheable += weight * fragment.size
        if weighted_total == 0:
            return 0.0
        return weighted_cacheable / weighted_total


def homogeneous_application(params: AnalysisParams) -> Application:
    """The Table 2 configuration expressed in the general model.

    Cacheability is striped identically within every page (Bresenham over
    the slot index), so all pages are byte-identical and the general
    model's ratios match :func:`repro.analysis.model.bytes_ratio`
    *exactly* whenever ``cacheability * fragments_per_page`` is integral.
    At non-integral products (e.g. Table 2's 0.6 x 4 = 2.4) no boolean
    assignment realizes the fraction per page; the closed form then
    reports the fractional expectation while any concrete application
    rounds — the same discreteness that shows up as a small gap between
    the analytical curve and testbed measurements.
    """
    fragments: List[FragmentSpec] = []
    pages: List[PageComposition] = []
    c = params.cacheability
    for page_index in range(params.num_pages):
        names = []
        for slot in range(params.fragments_per_page):
            name = "p%d-f%d" % (page_index, slot)
            cacheable = (
                math.floor((slot + 1) * c) - math.floor(slot * c) == 1
            )
            fragments.append(
                FragmentSpec(name, params.fragment_size, cacheable)
            )
            names.append(name)
        pages.append(PageComposition("page%d" % page_index, tuple(names)))
    return Application(
        fragments,
        pages,
        header_bytes=params.header_bytes,
        tag_size=params.tag_size,
        zipf_alpha=params.zipf_alpha,
    )
