"""A tiny SQL dialect: tokenizer, parser, and statement AST.

The dynamic scripts in this reproduction issue the same shapes of query the
paper's examples imply (category listings, profile lookups, quote updates),
so the dialect is deliberately small:

* ``SELECT col, ... | * FROM table [WHERE conj] [ORDER BY col [ASC|DESC]]
  [LIMIT n]``
* ``INSERT INTO table (col, ...) VALUES (val, ...)``
* ``UPDATE table SET col = val, ... [WHERE conj]``
* ``DELETE FROM table [WHERE conj]``

``conj`` is one or more ``col op val`` comparisons joined by ``AND``; ``op``
is one of ``= != <> < <= > >= LIKE``.  Values are integer/float literals,
single-quoted strings (with ``''`` escaping), ``NULL``, ``TRUE``/``FALSE``,
or ``?`` placeholders bound at execution time.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..errors import SqlSyntaxError

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<number>\d+\.\d+|\d+)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),*?])
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "select", "from", "where", "and", "order", "by", "asc", "desc", "limit",
    "insert", "into", "values", "update", "set", "delete", "like",
    "null", "true", "false",
    "count", "sum", "avg", "min", "max", "group",
}

#: Aggregate function names (a subset of KEYWORDS).
AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class Token:
    kind: str  # 'string' | 'number' | 'op' | 'punct' | 'keyword' | 'ident'
    text: str
    position: int


def tokenize(sql: str) -> List[Token]:
    """Split a statement into tokens, raising on anything unrecognized."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SqlSyntaxError(
                "unrecognized character %r at position %d in %r"
                % (sql[pos], pos, sql)
            )
        kind = match.lastgroup or ""
        text = match.group()
        if kind != "ws":
            if kind == "word":
                lowered = text.lower()
                kind = "keyword" if lowered in KEYWORDS else "ident"
                text = lowered if kind == "keyword" else text
            tokens.append(Token(kind, text, pos))
        pos = match.end()
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class Placeholder:
    """A ``?`` in the statement, bound positionally at execution time."""

    _instance: Optional["Placeholder"] = None

    def __new__(cls) -> "Placeholder":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "?"


PLACEHOLDER = Placeholder()

Value = Union[int, float, str, bool, None, Placeholder]


@dataclass(frozen=True)
class Condition:
    """One ``column op value`` comparison."""

    column: str
    op: str  # '=', '!=', '<', '<=', '>', '>=', 'like'
    value: Value

    def matches(self, row_value: object, bound_value: object) -> bool:
        """Evaluate against a row value with the placeholder already bound."""
        if self.op == "=":
            return row_value == bound_value
        if self.op == "!=":
            return row_value != bound_value
        if self.op == "like":
            return _like_match(str(bound_value), row_value)
        if row_value is None or bound_value is None:
            return False  # SQL three-valued logic: comparisons to NULL fail
        if self.op == "<":
            return row_value < bound_value  # type: ignore[operator]
        if self.op == "<=":
            return row_value <= bound_value  # type: ignore[operator]
        if self.op == ">":
            return row_value > bound_value  # type: ignore[operator]
        if self.op == ">=":
            return row_value >= bound_value  # type: ignore[operator]
        raise SqlSyntaxError("unknown operator %r" % self.op)


def _like_match(pattern: str, value: object) -> bool:
    if value is None:
        return False
    # '%' matches any run, '_' any single character.  Escape each literal
    # span separately (re.escape no longer escapes '%'/'_' themselves).
    parts = []
    for chunk in pattern.split("%"):
        parts.append(".".join(re.escape(piece) for piece in chunk.split("_")))
    regex = ".*".join(parts)
    return re.fullmatch(regex, str(value)) is not None


@dataclass(frozen=True)
class Aggregate:
    """One aggregate select item, e.g. ``COUNT(*)`` or ``AVG(price)``.

    ``column`` is ``None`` only for ``COUNT(*)``.  The result column is
    named ``func(column)`` (lower case), e.g. ``avg(price)``.
    """

    func: str  # 'count' | 'sum' | 'avg' | 'min' | 'max'
    column: Optional[str] = None

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCTIONS:
            raise SqlSyntaxError("unknown aggregate %r" % self.func)
        if self.column is None and self.func != "count":
            raise SqlSyntaxError("%s(*) is not valid; only COUNT(*)" % self.func)

    @property
    def result_name(self) -> str:
        """The output column name, e.g. ``avg(price)``."""
        return "%s(%s)" % (self.func, self.column if self.column else "*")


@dataclass(frozen=True)
class SelectStatement:
    table: str
    columns: Tuple[str, ...]  # empty tuple means '*' (when no aggregates)
    where: Tuple[Condition, ...] = ()
    order_by: Optional[str] = None
    descending: bool = False
    limit: Optional[int] = None
    aggregates: Tuple[Aggregate, ...] = ()
    group_by: Optional[str] = None

    @property
    def is_star(self) -> bool:
        """Whether this is a plain ``SELECT *``."""
        return not self.columns and not self.aggregates

    @property
    def is_aggregate(self) -> bool:
        """Whether any aggregate select items are present."""
        return bool(self.aggregates)


@dataclass(frozen=True)
class InsertStatement:
    table: str
    columns: Tuple[str, ...]
    values: Tuple[Value, ...]


@dataclass(frozen=True)
class UpdateStatement:
    table: str
    assignments: Tuple[Tuple[str, Value], ...]
    where: Tuple[Condition, ...] = ()


@dataclass(frozen=True)
class DeleteStatement:
    table: str
    where: Tuple[Condition, ...] = ()


Statement = Union[SelectStatement, InsertStatement, UpdateStatement, DeleteStatement]


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> Optional[Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of statement: %r" % self.sql)
        self.index += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        token = self._next()
        if token.kind != "keyword" or token.text != word:
            raise SqlSyntaxError(
                "expected %s at position %d in %r, got %r"
                % (word.upper(), token.position, self.sql, token.text)
            )

    def _expect_punct(self, char: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.text != char:
            raise SqlSyntaxError(
                "expected %r at position %d in %r, got %r"
                % (char, token.position, self.sql, token.text)
            )

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.text == word:
            self.index += 1
            return True
        return False

    def _identifier(self) -> str:
        token = self._next()
        if token.kind != "ident":
            raise SqlSyntaxError(
                "expected identifier at position %d in %r, got %r"
                % (token.position, self.sql, token.text)
            )
        return token.text

    def _value(self) -> Value:
        token = self._next()
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "punct" and token.text == "?":
            return PLACEHOLDER
        if token.kind == "keyword":
            if token.text == "null":
                return None
            if token.text == "true":
                return True
            if token.text == "false":
                return False
        raise SqlSyntaxError(
            "expected a value at position %d in %r, got %r"
            % (token.position, self.sql, token.text)
        )

    def _done(self) -> None:
        token = self._peek()
        if token is not None:
            raise SqlSyntaxError(
                "trailing tokens starting with %r at position %d in %r"
                % (token.text, token.position, self.sql)
            )

    # -- clauses ---------------------------------------------------------------

    def _where_clause(self) -> Tuple[Condition, ...]:
        if not self._accept_keyword("where"):
            return ()
        conditions = [self._condition()]
        while self._accept_keyword("and"):
            conditions.append(self._condition())
        return tuple(conditions)

    def _condition(self) -> Condition:
        column = self._identifier()
        token = self._next()
        if token.kind == "op":
            op = "!=" if token.text == "<>" else token.text
        elif token.kind == "keyword" and token.text == "like":
            op = "like"
        else:
            raise SqlSyntaxError(
                "expected comparison operator at position %d in %r, got %r"
                % (token.position, self.sql, token.text)
            )
        return Condition(column, op, self._value())

    # -- statements --------------------------------------------------------------

    def parse(self) -> Statement:
        token = self._peek()
        if token is None:
            raise SqlSyntaxError("empty statement")
        if token.kind != "keyword":
            raise SqlSyntaxError(
                "statement must start with a keyword, got %r" % token.text
            )
        if token.text == "select":
            return self._select()
        if token.text == "insert":
            return self._insert()
        if token.text == "update":
            return self._update()
        if token.text == "delete":
            return self._delete()
        raise SqlSyntaxError("unsupported statement type %r" % token.text)

    def _select(self) -> SelectStatement:
        self._expect_keyword("select")
        columns: List[str] = []
        aggregates: List[Aggregate] = []
        token = self._peek()
        if token is not None and token.kind == "punct" and token.text == "*":
            self._next()
        else:
            self._select_item(columns, aggregates)
            while self._accept_punct_comma():
                self._select_item(columns, aggregates)
        self._expect_keyword("from")
        table = self._identifier()
        where = self._where_clause()
        group_by = None
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by = self._identifier()
        order_by = None
        descending = False
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by = self._identifier()
            if self._accept_keyword("desc"):
                descending = True
            else:
                self._accept_keyword("asc")
        limit = None
        if self._accept_keyword("limit"):
            value = self._value()
            if not isinstance(value, int) or value < 0:
                raise SqlSyntaxError("LIMIT requires a non-negative integer")
            limit = value
        self._done()
        self._check_select_shape(columns, aggregates, group_by)
        return SelectStatement(
            table=table,
            columns=tuple(columns),
            where=where,
            order_by=order_by,
            descending=descending,
            limit=limit,
            aggregates=tuple(aggregates),
            group_by=group_by,
        )

    def _select_item(self, columns: List[str], aggregates: List[Aggregate]) -> None:
        token = self._peek()
        if (
            token is not None
            and token.kind == "keyword"
            and token.text in AGGREGATE_FUNCTIONS
        ):
            func = self._next().text
            self._expect_punct("(")
            inner = self._peek()
            if inner is not None and inner.kind == "punct" and inner.text == "*":
                self._next()
                column = None
            else:
                column = self._identifier()
            self._expect_punct(")")
            aggregates.append(Aggregate(func, column))
        else:
            columns.append(self._identifier())

    def _check_select_shape(self, columns, aggregates, group_by) -> None:
        """Aggregate queries may project only the GROUP BY column."""
        if aggregates:
            extra = [c for c in columns if c != group_by]
            if extra:
                raise SqlSyntaxError(
                    "non-aggregated columns %s require a matching GROUP BY"
                    % extra
                )
        elif group_by is not None:
            raise SqlSyntaxError("GROUP BY without aggregates is not supported")

    def _insert(self) -> InsertStatement:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._identifier()
        self._expect_punct("(")
        columns = [self._identifier()]
        while self._accept_punct_comma():
            columns.append(self._identifier())
        self._expect_punct(")")
        self._expect_keyword("values")
        self._expect_punct("(")
        values = [self._value()]
        while self._accept_punct_comma():
            values.append(self._value())
        self._expect_punct(")")
        self._done()
        if len(columns) != len(values):
            raise SqlSyntaxError(
                "INSERT has %d columns but %d values" % (len(columns), len(values))
            )
        return InsertStatement(table=table, columns=tuple(columns), values=tuple(values))

    def _update(self) -> UpdateStatement:
        self._expect_keyword("update")
        table = self._identifier()
        self._expect_keyword("set")
        assignments = [self._assignment()]
        while self._accept_punct_comma():
            assignments.append(self._assignment())
        where = self._where_clause()
        self._done()
        return UpdateStatement(table=table, assignments=tuple(assignments), where=where)

    def _assignment(self) -> Tuple[str, Value]:
        column = self._identifier()
        token = self._next()
        if token.kind != "op" or token.text != "=":
            raise SqlSyntaxError(
                "expected '=' in SET clause at position %d in %r"
                % (token.position, self.sql)
            )
        return column, self._value()

    def _delete(self) -> DeleteStatement:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._identifier()
        where = self._where_clause()
        self._done()
        return DeleteStatement(table=table, where=where)

    def _accept_punct_comma(self) -> bool:
        token = self._peek()
        if token is not None and token.kind == "punct" and token.text == ",":
            self.index += 1
            return True
        return False


def parse(sql: str) -> Statement:
    """Parse one statement of the tiny dialect into its AST."""
    return _Parser(sql).parse()


def count_placeholders(statement: Statement) -> int:
    """How many ``?`` placeholders a parsed statement contains."""
    count = 0
    if isinstance(statement, SelectStatement):
        conditions: Tuple[Condition, ...] = statement.where
    elif isinstance(statement, DeleteStatement):
        conditions = statement.where
    elif isinstance(statement, UpdateStatement):
        conditions = statement.where
        count += sum(1 for _, value in statement.assignments if value is PLACEHOLDER)
    elif isinstance(statement, InsertStatement):
        return sum(1 for value in statement.values if value is PLACEHOLDER)
    else:  # pragma: no cover - exhaustive over Statement
        raise SqlSyntaxError("unknown statement type %r" % (statement,))
    count += sum(1 for cond in conditions if cond.value is PLACEHOLDER)
    return count
