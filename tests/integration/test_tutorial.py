"""The TUTORIAL.md walkthrough, executed end to end.

Docs that don't run are docs that rot; this test is the tutorial's code,
assembled, so any API drift breaks loudly here.
"""

from repro.appserver import ApplicationServer, DynamicScript, HttpRequest, SiteServices
from repro.core import BackEndMonitor, Dependency, DynamicProxyCache
from repro.database import Database, schema
from repro.harness.monitoring import take_snapshot
from repro.harness.warming import CacheWarmer
from repro.network import SimulatedClock
from repro.network.latency import FREE
from repro.workload import PageSpec


def build_everything():
    db = Database("recipes")
    dishes = db.create_table(schema(
        "dishes",
        [("dish_id", "str"), ("cuisine", "str"), ("name", "str"),
         ("minutes", "int")],
    ))
    dishes.create_index("cuisine")
    dishes.insert({"dish_id": "d1", "cuisine": "thai", "name": "Pad See Ew",
                   "minutes": 25})
    dishes.insert({"dish_id": "d2", "cuisine": "thai", "name": "Tom Kha",
                   "minutes": 40})
    dishes.insert({"dish_id": "d3", "cuisine": "oaxacan", "name": "Tlayuda",
                   "minutes": 35})

    services = SiteServices(db=db)
    services.tags.tag(
        "cuisine_listing",
        dependencies=lambda p: (
            Dependency("dishes", where_column="cuisine",
                       where_value=p["cuisine"]),
        ),
    )
    services.tags.tag(
        "dish_of_the_day",
        ttl=3600.0,  # TTL-only freshness: survives catalog inserts
    )

    class CuisineScript(DynamicScript):
        path = "/cuisine.jsp"

        def run(self, ctx):
            cuisine = ctx.request.param("cuisine", "thai")
            ctx.write("<html><body>")
            ctx.block(
                "cuisine_listing",
                {"cuisine": cuisine},
                lambda: "".join(
                    "<li>%s (%d min)</li>" % (row["name"], row["minutes"])
                    for row in db.table("dishes").lookup("cuisine", cuisine)
                ),
            )
            ctx.block(
                "dish_of_the_day",
                {},
                lambda: "<b>Try: %s</b>"
                % next(iter(db.table("dishes").scan()))["name"],
            )
            ctx.write("</body></html>")

    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=1024, clock=clock)
    bem.attach_database(db.bus)
    server = ApplicationServer(services, clock=clock, bem=bem,
                               cost_model=FREE)
    server.register(CuisineScript())
    dpc = DynamicProxyCache(capacity=1024)
    return db, server, bem, dpc


def test_tutorial_end_to_end():
    db, server, bem, dpc = build_everything()
    request = HttpRequest("/cuisine.jsp", {"cuisine": "thai"})

    # Cold -> warm shrinkage (§4 in the tutorial).
    cold = server.handle(request)
    page = dpc.process_response(cold.body)
    assert "Pad See Ew" in page.html
    warm = server.handle(request)
    assert warm.body_bytes < cold.body_bytes
    assert dpc.process_response(warm.body).html == page.html

    # §5: an insert invalidates exactly the listing fragment.
    db.table("dishes").insert(
        {"dish_id": "d4", "cuisine": "thai", "name": "Khao Soi",
         "minutes": 45}
    )
    fresh = server.handle(request)
    assert fresh.meta["misses"] == 1        # listing only
    assert fresh.meta["hits"] == 1          # dish_of_the_day survives
    assert "Khao Soi" in dpc.process_response(fresh.body).html

    # §5: transactional updates invalidate at commit, atomically.
    events_before = bem.invalidation.events_seen
    with db.transaction():
        db.table("dishes").update({"minutes": 20}, key="d1")
        db.table("dishes").update({"minutes": 30}, key="d2")
        assert bem.invalidation.events_seen == events_before
    assert bem.invalidation.events_seen == events_before + 2

    # §6: warming + snapshot.
    report = CacheWarmer(server, dpc).warm_pages(
        [PageSpec.create("/cuisine.jsp", {"cuisine": c})
         for c in ("thai", "oaxacan")]
    )
    assert report.requests_replayed == 2
    snapshot = take_snapshot(bem=bem, dpc=dpc)
    assert snapshot.get("bem.fragment_hits") > 0

    # §7: the oracle.
    oracle = server.render_reference_page(request)
    assert dpc.process_response(server.handle(request).body).html == oracle
