"""Property: rollback restores exactly the pre-transaction state, and
commit delivers exactly the events autocommit would have."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import Database, schema

keys = st.integers(0, 9)
values = st.integers(-100, 100)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys, values),
        st.tuples(st.just("update"), keys, values),
        st.tuples(st.just("delete"), keys, values),
    ),
    max_size=25,
)


def fresh_db():
    db = Database()
    table = db.create_table(schema("t", [("k", "int"), ("v", "int")]))
    table.create_index("v")
    for k in range(5):
        table.insert({"k": k, "v": k * 10})
    return db


def apply_ops(db, ops):
    table = db.table("t")
    for op, key, value in ops:
        if op == "insert":
            if key not in table:
                table.insert({"k": key, "v": value})
        elif op == "update":
            table.update({"v": value}, key=key)
        else:
            table.delete(key=key)


def snapshot(db):
    table = db.table("t")
    return sorted((row["k"], row["v"]) for row in table.scan())


def index_view(db, value):
    return sorted(row["k"] for row in db.table("t").lookup("v", value))


@given(operations)
@settings(max_examples=200)
def test_rollback_restores_state(ops):
    db = fresh_db()
    before = snapshot(db)
    db.begin()
    apply_ops(db, ops)
    db.rollback()
    assert snapshot(db) == before


@given(operations, values)
def test_rollback_restores_indexes(ops, probe):
    db = fresh_db()
    before = index_view(db, probe)
    db.begin()
    apply_ops(db, ops)
    db.rollback()
    assert index_view(db, probe) == before


@given(operations)
@settings(max_examples=150)
def test_commit_delivers_autocommit_events(ops):
    committed_events = []
    db1 = fresh_db()
    db1.bus.subscribe(
        lambda e: committed_events.append((e.table, e.operation, e.key))
    )
    db1.begin()
    apply_ops(db1, ops)
    db1.commit()

    autocommit_events = []
    db2 = fresh_db()
    db2.bus.subscribe(
        lambda e: autocommit_events.append((e.table, e.operation, e.key))
    )
    apply_ops(db2, ops)

    assert committed_events == autocommit_events
    assert snapshot(db1) == snapshot(db2)


@given(operations)
def test_no_events_escape_before_commit(ops):
    db = fresh_db()
    leaked = []
    db.bus.subscribe(leaked.append)
    db.begin()
    apply_ops(db, ops)
    assert leaked == []
    db.rollback()
    assert leaked == []
