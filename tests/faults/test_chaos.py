"""Chaos acceptance: no fault scenario may ever produce a wrong page.

These are the subsystem's headline guarantees: under DPC crash, link
partition, message loss, and directory corruption the harness serves zero
incorrect pages (every delivered page is checked against the no-cache
oracle), and after a crash the hit ratio re-climbs to within five points
of the pre-fault steady state.
"""

import pytest

from repro.errors import ConfigurationError
from repro.faults.chaos import ChaosConfig, run_chaos, summarize_recovery
from repro.faults.injectors import (
    ChannelDegradation,
    ChannelPartition,
    DirectoryCorruption,
    DpcCrash,
    MessageLoss,
)
from repro.harness.testbed import TestbedConfig


def make_config(faults, requests=500, **kwargs):
    kwargs.setdefault("bucket_requests", 50)
    return ChaosConfig(
        testbed=TestbedConfig(
            mode="dpc", requests=requests, warmup_requests=100, seed=11
        ),
        faults=faults,
        **kwargs,
    )


SCENARIOS = {
    "dpc_crash": [DpcCrash(at=6.0, downtime=0.2)],
    "partition": [ChannelPartition(at=6.0, duration=0.5)],
    "degradation": [ChannelDegradation(at=6.0, duration=1.0, extra_delay_s=0.05)],
    "message_loss": [MessageLoss(at=6.0, duration=2.0, drop_probability=0.4, seed=3)],
    "corrupt_flip_valid": [
        DirectoryCorruption(at=6.0, mode="flip_valid", count=8, seed=3)
    ],
    "corrupt_leak_key": [DirectoryCorruption(at=6.0, mode="leak_key", count=8, seed=3)],
    "corrupt_drop_slot": [
        DirectoryCorruption(at=6.0, mode="drop_slot", count=8, seed=3)
    ],
    "compound": [
        DpcCrash(at=5.0, downtime=0.2),
        MessageLoss(at=6.5, duration=0.8, drop_probability=0.3, seed=5),
        DirectoryCorruption(at=7.5, mode="drop_slot", count=4, seed=5),
    ],
}


class TestConfigValidation:
    def test_requires_dpc_mode(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(testbed=TestbedConfig(mode="nocache"))

    def test_bucket_requests_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            make_config([], bucket_requests=0)


class TestZeroIncorrectPages:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_no_wrong_page_ever(self, scenario):
        result = run_chaos(make_config(SCENARIOS[scenario]))
        assert result.pages_checked > 0, scenario
        assert result.incorrect_pages == 0, scenario
        # Every request is accounted for exactly once.
        served = (
            result.pages_checked + result.bypassed_requests + result.failed_requests
        )
        assert served == result.requests, scenario


class TestCrashRecovery:
    @pytest.fixture(scope="class")
    def result(self):
        return run_chaos(make_config([DpcCrash(at=6.0, downtime=0.2)]))

    def test_downtime_is_bridged_by_bypass(self, result):
        assert result.bypassed_requests > 0
        assert result.failed_requests == 0
        assert result.degradation.availability(result.requests) == 1.0

    def test_epoch_resync_ran_exactly_once(self, result):
        kinds = [event.kind for event in result.recovery_events]
        assert kinds.count("epoch_resync") == 1
        assert result.recovery.epoch_resyncs == 1

    def test_hit_ratio_recovers_within_five_points(self, result):
        summary = summarize_recovery(result, fault_at=6.0, tolerance=0.05)
        assert summary.steady_hit_ratio > 0.5
        assert summary.dip_hit_ratio < summary.steady_hit_ratio
        assert summary.recovered
        assert summary.recovery_time_s is not None
        assert summary.recovery_time_s > 0.0

    def test_without_bypass_downtime_costs_availability(self):
        result = run_chaos(
            make_config([DpcCrash(at=6.0, downtime=0.2)], bypass_when_down=False)
        )
        assert result.failed_requests > 0
        assert result.bypassed_requests == 0
        assert result.incorrect_pages == 0
        assert result.degradation.availability(result.requests) < 1.0


class TestPartitionAndLoss:
    def test_partition_dead_letters_instead_of_serving_wrong(self):
        result = run_chaos(make_config([ChannelPartition(at=6.0, duration=0.5)]))
        assert result.delivery.dead_letters > 0
        assert result.failed_requests > 0
        assert result.incorrect_pages == 0

    def test_message_loss_is_absorbed_by_retries(self):
        result = run_chaos(
            make_config(
                [MessageLoss(at=6.0, duration=2.0, drop_probability=0.4, seed=3)]
            )
        )
        assert result.messages_dropped > 0
        assert result.delivery.retries > 0
        assert result.incorrect_pages == 0


class TestDeterminism:
    def test_same_seed_same_series(self):
        def run():
            # Injector instances carry RNG/fired state, so each run gets
            # a fresh schedule built from the same parameters.
            return run_chaos(
                make_config(
                    [
                        DpcCrash(at=6.0, downtime=0.2),
                        MessageLoss(
                            at=8.0, duration=1.0, drop_probability=0.3, seed=5
                        ),
                    ]
                )
            )

        first, second = run(), run()
        assert first.series() == second.series()
        assert first.bypassed_requests == second.bypassed_requests
        assert first.messages_dropped == second.messages_dropped
        assert [e.kind for e in first.recovery_events] == [
            e.kind for e in second.recovery_events
        ]


class TestFaultFreeBaseline:
    def test_no_faults_means_no_recovery_activity(self):
        result = run_chaos(make_config([]))
        assert result.incorrect_pages == 0
        assert result.bypassed_requests == 0
        assert result.failed_requests == 0
        assert result.recovery_events == []
        assert result.messages_dropped == 0
        assert result.delivery.first_try_ratio == 1.0
