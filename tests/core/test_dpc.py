"""Tests for the Dynamic Proxy Cache slot array and assembly loop."""

import pytest

from repro.core.dpc import DynamicProxyCache
from repro.core.template import Template, TemplateConfig
from repro.errors import AssemblyError, ConfigurationError, SlotError


@pytest.fixture
def dpc():
    return DynamicProxyCache(capacity=16)


class TestSlots:
    def test_store_and_fetch(self, dpc):
        dpc.store(3, "content")
        assert dpc.fetch(3) == "content"
        assert dpc.slot_in_use(3)

    def test_fetch_empty_slot_is_protocol_error(self, dpc):
        with pytest.raises(AssemblyError):
            dpc.fetch(5)

    def test_out_of_range_key(self, dpc):
        with pytest.raises(SlotError):
            dpc.store(99, "x")
        with pytest.raises(SlotError):
            dpc.fetch(-1)

    def test_overwrite_slot(self, dpc):
        dpc.store(1, "old")
        dpc.store(1, "new")
        assert dpc.fetch(1) == "new"

    def test_occupied_slots(self, dpc):
        dpc.store(0, "a")
        dpc.store(5, "b")
        assert dpc.occupied_slots() == 2

    def test_clear(self, dpc):
        dpc.store(0, "a")
        dpc.clear()
        assert dpc.occupied_slots() == 0

    def test_capacity_must_fit_key_width(self):
        with pytest.raises(ConfigurationError):
            DynamicProxyCache(capacity=1000, template_config=TemplateConfig(key_width=2))


class TestAssembly:
    def test_set_stores_and_emits(self, dpc):
        wire = Template().literal("<a>").set(1, "frag").literal("</a>").serialize()
        page = dpc.process_response(wire)
        assert page.html == "<a>frag</a>"
        assert page.fragments_set == 1
        assert dpc.fetch(1) == "frag"

    def test_get_splices_cached_content(self, dpc):
        dpc.process_response(Template().set(1, "cached!").serialize())
        page = dpc.process_response(
            Template().literal("[").get(1).literal("]").serialize()
        )
        assert page.html == "[cached!]"
        assert page.fragments_get == 1

    def test_first_request_set_then_get_flow(self, dpc):
        """§4.3.2: first response all SETs, later ones mostly GETs."""
        first = Template().set(0, "nav").literal("|").set(1, "body")
        second = Template().get(0).literal("|").get(1)
        page1 = dpc.process_response(first.serialize())
        page2 = dpc.process_response(second.serialize())
        assert page1.html == page2.html == "nav|body"
        assert page2.template_bytes < page1.template_bytes

    def test_get_for_never_set_slot_raises(self, dpc):
        with pytest.raises(AssemblyError):
            dpc.process_response(Template().get(7).serialize())

    def test_expansion_ratio(self, dpc):
        dpc.process_response(Template().set(1, "x" * 980).serialize())
        page = dpc.process_response(Template().get(1).serialize())
        # 980 payload bytes from a 10-byte GET template: 98x expansion.
        assert page.expansion_ratio == pytest.approx(98.0)

    def test_plain_passthrough(self, dpc):
        page = dpc.process_response("just plain html, no tags")
        assert page.html == "just plain html, no tags"
        assert page.fragments_set == page.fragments_get == 0

    def test_stats_accumulate(self, dpc):
        dpc.process_response(Template().set(1, "abc").serialize())
        dpc.process_response(Template().get(1).serialize())
        assert dpc.stats.responses_processed == 2
        assert dpc.stats.fragments_set == 1
        assert dpc.stats.fragments_get == 1
        assert dpc.stats.page_bytes_out == 6
        assert dpc.stats.bytes_saved == dpc.stats.page_bytes_out - dpc.stats.template_bytes_in

    def test_scanner_counts_every_response_byte(self, dpc):
        wire = Template().literal("x" * 100).serialize()
        dpc.process_response(wire)
        assert dpc.bytes_scanned == len(wire)

    def test_escaped_sentinel_in_content_survives(self, dpc):
        wire = Template().set(1, "tag-ish <~ content").serialize()
        page = dpc.process_response(wire)
        assert page.html == "tag-ish <~ content"
        assert dpc.fetch(1) == "tag-ish <~ content"
