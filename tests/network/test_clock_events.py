"""Tests for the heap-backed event queue on the simulated clock."""

import pytest

from repro.errors import ConfigurationError
from repro.network.clock import EventQueue, SimulatedClock


class TestEventQueue:
    def test_pops_in_timestamp_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append("c"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(2.0, lambda: fired.append("b"))
        while True:
            due = queue.pop_due(10.0)
            if due is None:
                break
            due[1]()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, lambda: fired.append("first"))
        queue.push(1.0, lambda: fired.append("second"))
        queue.pop_due(1.0)[1]()
        queue.pop_due(1.0)[1]()
        assert fired == ["first", "second"]

    def test_not_due_stays_queued(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        assert queue.pop_due(4.999) is None
        assert len(queue) == 1
        assert queue.peek_time() == 5.0

    def test_empty_queue(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        assert queue.pop_due(100.0) is None
        assert not queue


class TestClockScheduling:
    def test_advance_fires_due_callbacks(self):
        clock = SimulatedClock()
        fired = []
        clock.schedule(1.0, lambda: fired.append(clock.now()))
        clock.advance(0.5)
        assert fired == []
        clock.advance(0.5)
        assert fired == [1.0]

    def test_advance_to_fires_due_callbacks(self):
        clock = SimulatedClock()
        fired = []
        clock.schedule_at(2.0, lambda: fired.append("x"))
        clock.advance_to(3.0)
        assert fired == ["x"]

    def test_callbacks_fire_in_timestamp_order(self):
        clock = SimulatedClock()
        fired = []
        clock.schedule(2.0, lambda: fired.append("late"))
        clock.schedule(1.0, lambda: fired.append("early"))
        clock.advance(5.0)
        assert fired == ["early", "late"]

    def test_callback_may_schedule_more_work(self):
        clock = SimulatedClock()
        fired = []

        def chain():
            fired.append("first")
            clock.schedule_at(2.0, lambda: fired.append("second"))

        clock.schedule(1.0, chain)
        clock.advance(5.0)  # both the callback and its follow-up are due
        assert fired == ["first", "second"]

    def test_past_timestamp_fires_on_next_advance(self):
        clock = SimulatedClock(start=5.0)
        fired = []
        clock.schedule_at(1.0, lambda: fired.append("overdue"))
        assert fired == []
        clock.advance(0.0)
        assert fired == ["overdue"]

    def test_negative_delay_rejected(self):
        clock = SimulatedClock()
        with pytest.raises(ConfigurationError):
            clock.schedule(-1.0, lambda: None)
        with pytest.raises(ConfigurationError):
            clock.schedule_at(-1.0, lambda: None)

    def test_reset_drops_pending_events(self):
        clock = SimulatedClock()
        fired = []
        clock.schedule(1.0, lambda: fired.append("x"))
        assert clock.pending_events() == 1
        clock.reset()
        assert clock.pending_events() == 0
        clock.advance(10.0)
        assert fired == []

    def test_unscheduled_clock_behaves_as_before(self):
        clock = SimulatedClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance_to(1.0) == 1.5  # past timestamps ignored
        assert clock.advance_to(2.0) == 2.0
