"""Exporters: JSON-lines round trips, aligned tables, span trees."""

import json

import pytest

from repro.harness.reporting import format_table
from repro.network.clock import SimulatedClock
from repro.telemetry.export import (
    parse_json_lines,
    registry_from_rows,
    render_metrics,
    render_span_tree,
    span_to_dict,
    spans_to_json_lines,
    to_json_lines,
)
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.tracing import Tracer


def sample_rows():
    registry = MetricsRegistry()
    registry.counter("bem.fragment_hits").inc(12)
    registry.gauge("dpc.slots_occupied").set(5)
    histogram = registry.histogram("db.wait_s", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(3.0)
    return registry.collect()


class TestJsonLines:
    def test_round_trip_is_byte_identical(self):
        rows = sample_rows()
        text = to_json_lines(rows)
        parsed = parse_json_lines(text)
        assert to_json_lines(parsed) == text

    def test_round_trip_preserves_values(self):
        parsed = dict(parse_json_lines(to_json_lines(sample_rows())))
        assert parsed["bem.fragment_hits"] == 12
        assert parsed["db.wait_s.count"] == 2
        assert parsed["db.wait_s.buckets"] == [[0.1, 1], [1.0, 0], ["inf", 1]]

    def test_one_valid_json_object_per_line(self):
        for line in to_json_lines(sample_rows()).splitlines():
            record = json.loads(line)
            assert set(record) == {"name", "value"}

    def test_blank_lines_skipped(self):
        rows = parse_json_lines('\n{"name": "a.b", "value": 1}\n\n')
        assert rows == [("a.b", 1)]

    def test_registry_from_rows_replays_verbatim(self):
        rows = sample_rows()
        assert registry_from_rows(rows).collect() == rows


class TestRenderMetrics:
    def test_matches_harness_format_table(self):
        rows = sample_rows()
        assert render_metrics(rows) == format_table(["metric", "value"], rows)

    def test_title_prepended(self):
        text = render_metrics([("a.b", 1)], title="Snapshot")
        assert text.splitlines()[0] == "Snapshot"

    def test_empty_rows_still_render_headers(self):
        lines = render_metrics([]).splitlines()
        assert lines[0].startswith("metric")
        assert set(lines[1]) <= {"-", " "}


def build_trace():
    clock = SimulatedClock()
    tracer = Tracer(clock, enabled=True)
    with tracer.span("request", url="/page.jsp") as root:
        with tracer.span("bem.process"):
            clock.advance(0.010)
        with tracer.span("dpc.assemble") as assemble:
            assemble.set_status("failed")
            clock.advance(0.002)
    return root


class TestSpanExport:
    def test_span_to_dict_shape(self):
        record = span_to_dict(build_trace())
        assert record["name"] == "request"
        assert record["duration"] == pytest.approx(0.012)
        assert record["meta"] == {"url": "/page.jsp"}
        children = record["children"]
        assert [c["name"] for c in children] == ["bem.process", "dpc.assemble"]
        assert children[1]["status"] == "failed"
        assert "meta" not in children[0]

    def test_spans_to_json_lines_one_trace_per_line(self):
        roots = [build_trace(), build_trace()]
        lines = spans_to_json_lines(roots).splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "request"

    def test_render_span_tree(self):
        text = render_span_tree(build_trace())
        lines = text.splitlines()
        assert lines[0] == "request  12.000ms  url=/page.jsp"
        assert lines[1] == "  bem.process  10.000ms"
        assert lines[2] == "  dpc.assemble  2.000ms  status=failed"

    def test_render_span_tree_custom_indent(self):
        text = render_span_tree(build_trace(), indent="....")
        assert text.splitlines()[1].startswith("....bem.process")
