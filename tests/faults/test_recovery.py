"""Tests for the BEM↔DPC resync protocol."""

import pytest

from repro.appserver import HttpRequest
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.errors import AssemblyError, RecoveryError
from repro.faults.injectors import DirectoryCorruption, FaultContext
from repro.faults.recovery import ResyncProtocol
from repro.harness.monitoring import take_snapshot
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites import books


def books_stack(capacity=64):
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=capacity, clock=clock)
    server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
    bem.attach_database(server.services.db.bus)
    dpc = DynamicProxyCache(capacity=capacity)
    return server, bem, dpc


def requests(count=6):
    return [
        HttpRequest(
            "/catalog.jsp",
            {"categoryID": ("Fiction", "Science", "History")[i % 3]},
            session_id="s",
        )
        for i in range(count)
    ]


def warm(server, dpc, count=6):
    for request in requests(count):
        dpc.process_response(server.handle(request).body)


class TestEpochResync:
    def test_observe_matching_epoch_is_a_noop(self):
        server, bem, dpc = books_stack()
        warm(server, dpc)
        resync = ResyncProtocol(bem, dpc)
        assert resync.observe_epoch(dpc.epoch) is None
        assert resync.stats.epoch_resyncs == 0

    def test_crash_epoch_detected_and_resynced(self):
        server, bem, dpc = books_stack()
        warm(server, dpc)
        valid_before = len(bem.directory.valid_entries())
        assert valid_before > 0

        dpc.clear()  # cold restart: slots wiped, epoch bumped
        resync = ResyncProtocol(bem, dpc)
        event = resync.observe_epoch(dpc.epoch, now=1.0)

        assert event is not None and event.kind == "epoch_resync"
        assert event.entries_dropped == valid_before
        assert bem.epoch == dpc.epoch == 1
        assert not bem.directory.valid_entries()
        bem.directory.check_invariants()

    def test_service_is_correct_after_resync(self):
        server, bem, dpc = books_stack()
        warm(server, dpc)
        dpc.clear()
        ResyncProtocol(bem, dpc).resync(dpc.epoch)
        for request in requests():
            page = dpc.process_response(server.handle(request).body)
            assert page.html == server.render_reference_page(request)

    def test_resync_preserves_post_restart_entries(self):
        """Entries inserted after the restart carry the new epoch and must
        survive a late resync triggered by old traffic."""
        server, bem, dpc = books_stack()
        warm(server, dpc, count=3)
        dpc.clear()
        resync = ResyncProtocol(bem, dpc)
        resync.resync(dpc.epoch)
        warm(server, dpc, count=3)  # re-warm at the new epoch
        survivors = len(bem.directory.valid_entries())
        assert survivors > 0
        resync.resync(dpc.epoch)  # idempotent at the same epoch
        assert len(bem.directory.valid_entries()) == survivors

    def test_backwards_resync_refused(self):
        server, bem, dpc = books_stack()
        bem.epoch = 3
        with pytest.raises(RecoveryError):
            ResyncProtocol(bem, dpc).resync(1)

    def test_recover_dispatches_on_epoch_mismatch(self):
        server, bem, dpc = books_stack()
        warm(server, dpc)
        dpc.clear()
        with pytest.raises(AssemblyError):
            # Fail-stop fires first: the BEM still emits GETs.
            dpc.process_response(server.handle(requests()[0]).body)
        resync = ResyncProtocol(bem, dpc)
        event = resync.recover(now=2.0)
        assert event.kind == "epoch_resync"
        page = dpc.process_response(server.handle(requests()[0]).body)
        assert page.html == server.render_reference_page(requests()[0])


class TestAntiEntropy:
    def ctx(self, server, bem, dpc):
        return FaultContext(clock=SimulatedClock(), bem=bem, dpc=dpc)

    def test_sweep_on_healthy_deployment_drops_nothing(self):
        server, bem, dpc = books_stack()
        warm(server, dpc)
        valid = len(bem.directory.valid_entries())
        event = ResyncProtocol(bem, dpc).anti_entropy()
        assert event.entries_dropped == 0
        assert len(bem.directory.valid_entries()) == valid

    def test_sweep_repairs_flip_valid_corruption(self):
        server, bem, dpc = books_stack()
        warm(server, dpc)
        DirectoryCorruption(at=0.0, mode="flip_valid", count=3, seed=1).start(
            self.ctx(server, bem, dpc)
        )
        resync = ResyncProtocol(bem, dpc)
        resync.anti_entropy()
        bem.directory.check_invariants()
        assert resync.stats.discipline_repairs > 0
        for request in requests():
            page = dpc.process_response(server.handle(request).body)
            assert page.html == server.render_reference_page(request)

    def test_sweep_drops_entries_with_empty_slots(self):
        server, bem, dpc = books_stack()
        warm(server, dpc)
        DirectoryCorruption(at=0.0, mode="drop_slot", count=3, seed=1).start(
            self.ctx(server, bem, dpc)
        )
        event = ResyncProtocol(bem, dpc).anti_entropy()
        assert event.entries_dropped == 3
        bem.directory.check_invariants()

    def test_sweep_reclaims_leaked_keys(self):
        server, bem, dpc = books_stack()
        warm(server, dpc)
        before = len(bem.directory.free_list)
        DirectoryCorruption(at=0.0, mode="leak_key", count=3, seed=1).start(
            self.ctx(server, bem, dpc)
        )
        assert len(bem.directory.free_list) == before - 3
        resync = ResyncProtocol(bem, dpc)
        resync.anti_entropy()
        assert len(bem.directory.free_list) == before
        assert resync.stats.keys_reclaimed >= 3


class TestQuarantine:
    def test_undelivered_sets_are_invalidated(self):
        server, bem, dpc = books_stack()
        request = requests()[0]
        wire = server.handle(request).body  # template never reaches the DPC
        assert bem.directory.valid_entries()  # BEM already recorded the SETs

        resync = ResyncProtocol(bem, dpc)
        event = resync.quarantine_undelivered(wire)

        assert event.kind == "quarantine"
        assert event.entries_dropped > 0
        assert not bem.directory.valid_entries()
        # The next attempt regenerates and serves correctly.
        page = dpc.process_response(server.handle(request).body)
        assert page.html == server.render_reference_page(request)

    def test_quarantine_closes_the_recycled_key_hole(self):
        """A lost template whose SETs reused recycled keys must not let a
        later GET serve the predecessor fragment's bytes."""
        server, bem, dpc = books_stack(capacity=2)
        resync = ResyncProtocol(bem, dpc)
        for i, request in enumerate(requests(8)):
            wire = server.handle(request).body
            if i == 5:
                resync.quarantine_undelivered(wire)  # this delivery was lost
                continue
            page = dpc.process_response(wire)
            assert page.html == server.render_reference_page(request)


class TestObservability:
    def test_snapshot_includes_recovery_rows(self):
        server, bem, dpc = books_stack()
        warm(server, dpc)
        dpc.clear()
        resync = ResyncProtocol(bem, dpc)
        resync.recover(now=1.0)
        snapshot = take_snapshot(bem=bem, dpc=dpc, recovery=resync)
        assert snapshot.get("recovery.epoch_resyncs") == 1
        assert snapshot.get("recovery.synced_epoch") == 1

    def test_events_accumulate_for_postmortems(self):
        server, bem, dpc = books_stack()
        warm(server, dpc)
        resync = ResyncProtocol(bem, dpc)
        resync.anti_entropy(now=1.0)
        dpc.clear()
        resync.recover(now=2.0)
        kinds = [event.kind for event in resync.stats.events]
        assert kinds == ["anti_entropy", "epoch_resync"]
        assert [event.at for event in resync.stats.events] == [1.0, 2.0]
