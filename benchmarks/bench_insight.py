"""Insight-layer overhead benchmark and CI regression gate.

Thin wrapper around :mod:`repro.perf.insight` / :mod:`repro.bench`:

    python benchmarks/bench_insight.py              # full measurement
    python benchmarks/bench_insight.py --smoke      # CI gate vs BENCH_INSIGHT.json
    python benchmarks/bench_insight.py --record     # refresh the baseline

Two gates apply: the runner itself fails when the lower-quartile overhead
of an attached insight layer reaches 5%, and the smoke gate additionally
fails (exit 1) when the detached/attached ratio drops more than 10% below
the committed smoke baseline in ``BENCH_INSIGHT.json`` — see
docs/PERFORMANCE.md for how to read the file.
"""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench import main as bench_main  # noqa: E402 - after sys.path setup


def main(argv=None):
    """Run the insight overhead benchmark via the uniform runner."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    default_json = os.path.join(_ROOT, "BENCH_INSIGHT.json")
    if "--json" not in arguments:
        arguments += ["--json", default_json]
    return bench_main(["insight"] + arguments)


if __name__ == "__main__":
    sys.exit(main())
