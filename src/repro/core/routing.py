"""Request routing across forward-proxy DPCs (§7 extension).

The paper leaves forward-proxy deployment as future work and names request
routing as the first open issue: "routing that is based on URL is not
applicable in our case since page fragments cannot be determined from the
URL".

The routing key therefore cannot be the URL.  What *does* determine a
request's fragment set is the session (user identity plus site state), so
this router hashes a session-affinity key onto a consistent-hash ring of
proxies: all of one user's requests land on the same proxy, their
personalized fragments accumulate there, and adding/removing a proxy only
reshuffles ~1/N of sessions.  Failover walks the ring to the next live
node, which is the paper's "failover seamlessly and transparently"
requirement.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, List, Optional, Set

from ..errors import ConfigurationError, RoutingError


def _hash64(value: str) -> int:
    """Stable 64-bit hash (Python's ``hash`` is salted per process)."""
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Classic consistent hashing with virtual nodes."""

    def __init__(self, replicas: int = 64) -> None:
        if replicas <= 0:
            raise ConfigurationError("replicas must be positive")
        self.replicas = replicas
        self._ring: List[int] = []
        self._owner: Dict[int, str] = {}
        self._nodes: Set[str] = set()

    def add_node(self, node: str) -> None:
        """Place a node's virtual points on the ring."""
        if node in self._nodes:
            raise ConfigurationError("node %r is already on the ring" % node)
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = _hash64("%s#%d" % (node, replica))
            # Collisions across distinct nodes are astronomically unlikely
            # with 64-bit points but keep the first owner deterministic.
            if point not in self._owner:
                self._owner[point] = node
                self._ring.append(point)
        self._ring.sort()

    def remove_node(self, node: str) -> None:
        """Remove a node and all its virtual points."""
        if node not in self._nodes:
            raise ConfigurationError("node %r is not on the ring" % node)
        self._nodes.remove(node)
        self._ring = [p for p in self._ring if self._owner[p] != node]
        self._owner = {p: n for p, n in self._owner.items() if n != node}

    def nodes(self) -> List[str]:
        """All member node names, sorted."""
        return sorted(self._nodes)

    def preference_list(self, key: str, limit: Optional[int] = None) -> List[str]:
        """Distinct nodes in ring order starting at the key's position."""
        if not self._ring:
            return []
        if limit is None:
            limit = len(self._nodes)
        start = bisect_right(self._ring, _hash64(key))
        seen: List[str] = []
        for offset in range(len(self._ring)):
            point = self._ring[(start + offset) % len(self._ring)]
            node = self._owner[point]
            if node not in seen:
                seen.append(node)
                if len(seen) >= limit:
                    break
        return seen

    def __len__(self) -> int:
        return len(self._nodes)


class RequestRouter:
    """Routes requests to forward proxies by session affinity, with failover."""

    def __init__(self, replicas: int = 64) -> None:
        self.ring = ConsistentHashRing(replicas=replicas)
        self._down: Set[str] = set()
        self.routed = 0
        self.failovers = 0

    # -- membership --------------------------------------------------------------

    def add_proxy(self, name: str) -> None:
        """Add a proxy to the routing ring."""
        self.ring.add_node(name)

    def remove_proxy(self, name: str) -> None:
        """Remove a proxy from the ring (and its down-mark)."""
        self.ring.remove_node(name)
        self._down.discard(name)

    def mark_down(self, name: str) -> None:
        """Mark a proxy unavailable; traffic fails over past it."""
        if name not in self.ring.nodes():
            raise ConfigurationError("unknown proxy %r" % name)
        self._down.add(name)

    def mark_up(self, name: str) -> None:
        """Restore a proxy to service."""
        self._down.discard(name)

    def live_proxies(self) -> List[str]:
        """Proxies currently accepting traffic, sorted."""
        return [node for node in self.ring.nodes() if node not in self._down]

    # -- routing -----------------------------------------------------------------

    def affinity_key(self, user_id: Optional[str], session_id: Optional[str]) -> str:
        """The routing key: user identity when known, else the session.

        URL deliberately plays no part — that is the §7 point.
        """
        if user_id:
            return "user:%s" % user_id
        if session_id:
            return "session:%s" % session_id
        return "anonymous"

    def route(self, user_id: Optional[str] = None, session_id: Optional[str] = None) -> str:
        """Pick the proxy for a request, failing over past down nodes."""
        key = self.affinity_key(user_id, session_id)
        preference = self.ring.preference_list(key)
        if not preference:
            raise RoutingError("no proxies registered")
        self.routed += 1
        for rank, node in enumerate(preference):
            if node not in self._down:
                if rank > 0:
                    self.failovers += 1
                return node
        raise RoutingError("all %d proxies are down" % len(preference))
