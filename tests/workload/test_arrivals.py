"""Tests for arrival processes."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.workload.arrivals import (
    BurstyProcess,
    DeterministicProcess,
    PoissonProcess,
)


class TestDeterministicProcess:
    def test_even_spacing(self):
        process = DeterministicProcess(rate=10.0)
        times = list(process.arrival_times(random.Random(1), 5))
        assert times == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            DeterministicProcess(rate=0)


class TestPoissonProcess:
    def test_mean_rate_converges(self):
        process = PoissonProcess(rate=50.0)
        times = list(process.arrival_times(random.Random(3), 5000))
        observed_rate = len(times) / times[-1]
        assert observed_rate == pytest.approx(50.0, rel=0.1)

    def test_gaps_positive(self):
        process = PoissonProcess(rate=5.0)
        rng = random.Random(1)
        gaps = [gap for gap, _ in zip(process.gaps(rng), range(100))]
        assert all(gap > 0 for gap in gaps)

    def test_reproducible_with_seed(self):
        process = PoissonProcess(rate=5.0)
        a = list(process.arrival_times(random.Random(9), 20))
        b = list(process.arrival_times(random.Random(9), 20))
        assert a == b

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(rate=-1)


class TestBurstyProcess:
    def test_produces_requested_count(self):
        process = BurstyProcess(burst_rate=100.0, idle_gap=1.0, burst_length=5.0)
        times = list(process.arrival_times(random.Random(2), 200))
        assert len(times) == 200
        assert times == sorted(times)

    def test_bursts_have_idle_gaps(self):
        process = BurstyProcess(burst_rate=1000.0, idle_gap=10.0, burst_length=4.0)
        times = list(process.arrival_times(random.Random(4), 100))
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert max(gaps) >= 10.0       # idle separators exist
        assert min(gaps) < 0.1          # burst interior is dense

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            BurstyProcess(burst_rate=0, idle_gap=1.0)
        with pytest.raises(ConfigurationError):
            BurstyProcess(burst_rate=1.0, idle_gap=1.0, burst_length=0.5)
