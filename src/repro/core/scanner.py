"""Sentinel scanning for the DPC's template scanner.

The paper justifies its scan-cost assumption by noting that "string matching
algorithms (e.g., KMP [18]) are linear-time algorithms" (§5).  The DPC must
scan every response byte exactly once looking for instruction tags; this
module provides that linear-time scan in two interchangeable lanes:

* the **fast lane** walks the text with ``str.find``, which runs the same
  linear scan inside the interpreter's C string machinery.  This is what
  the serve path uses (see :mod:`repro.core.fastpath`).
* the **reference lane** is the classic per-character KMP loop, kept as the
  executable oracle the fast lane is differentially tested against.

Both lanes report identical match positions and identical scanned-byte
counts — the per-byte ``z`` cost of the Section 5 analysis is charged on
``len(text)`` either way, so Result 1's accounting does not depend on which
lane ran.

:func:`kmp_find_all` is the general algorithm; :class:`TagScanner` applies
it to the template tag sentinel and reports scanned-byte counts so that the
scan-cost analysis (Result 1) can be measured rather than assumed.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Tuple

from ..errors import ConfigurationError
from . import fastpath


@lru_cache(maxsize=256)
def _failure_table(pattern: str) -> Tuple[int, ...]:
    """Build (once per pattern) the KMP failure table, as a tuple.

    Shared by every KMP entry point so repeated scans with the same pattern
    never rebuild the table — previously ``kmp_iter`` reconstructed it on
    every call.
    """
    if not pattern:
        raise ConfigurationError("pattern cannot be empty")
    table = [0] * len(pattern)
    length = 0
    for i in range(1, len(pattern)):
        while length > 0 and pattern[i] != pattern[length]:
            length = table[length - 1]
        if pattern[i] == pattern[length]:
            length += 1
        table[i] = length
    return tuple(table)


def failure_function(pattern: str) -> List[int]:
    """KMP failure (longest-proper-prefix-suffix) table for ``pattern``.

    ``table[i]`` is the length of the longest proper prefix of
    ``pattern[:i+1]`` that is also a suffix of it.  The table is computed
    once per pattern and memoized (:func:`functools.lru_cache`); callers
    get a fresh list they are free to mutate.
    """
    return list(_failure_table(pattern))


def kmp_iter(text: str, pattern: str) -> Iterator[int]:
    """Yield the start index of every (possibly overlapping) match.

    Uses the memoized failure table — building it per call was measurable
    overhead for callers that scan many small texts with one pattern.
    """
    table = _failure_table(pattern)
    matched = 0
    for i, char in enumerate(text):
        while matched > 0 and char != pattern[matched]:
            matched = table[matched - 1]
        if char == pattern[matched]:
            matched += 1
        if matched == len(pattern):
            yield i - len(pattern) + 1
            matched = table[matched - 1]


def kmp_find_all(text: str, pattern: str) -> List[int]:
    """All match positions of ``pattern`` in ``text`` (overlaps included)."""
    return list(kmp_iter(text, pattern))


def kmp_find(text: str, pattern: str, start: int = 0) -> int:
    """First match position at or after ``start``, or -1.

    Equivalent to ``text.find(pattern, start)`` but via KMP; used where the
    single-pass guarantee matters for the scan-cost accounting.
    """
    for position in kmp_iter(text[start:], pattern):
        return start + position
    return -1


def find_positions(text: str, pattern: str) -> List[int]:
    """All (possibly overlapping) match positions, via ``str.find``.

    The fast lane's scan: the same linear pass as KMP, executed by the
    interpreter's C substring search instead of a per-character Python
    loop.  Overlapping matches are included (the search resumes one
    character past each match start), so the output is position-for-position
    identical to :func:`kmp_find_all`.
    """
    if not pattern:
        raise ConfigurationError("pattern cannot be empty")
    matches: List[int] = []
    find = text.find
    position = find(pattern)
    while position != -1:
        matches.append(position)
        position = find(pattern, position + 1)
    return matches


class TagScanner:
    """Finds instruction-tag sentinels in serialized templates.

    One scanner instance accumulates ``bytes_scanned`` across calls so a
    DPC can report total scanning work (the ``z`` per-byte cost in the
    Section 5 comparison).  With the fast lanes active (the default) the
    scan runs on ``str.find``; on the reference lanes it runs the KMP loop.
    Either way every byte of the text is charged to ``bytes_scanned``.
    """

    def __init__(self, sentinel: str) -> None:
        if not sentinel:
            raise ConfigurationError("sentinel cannot be empty")
        self.sentinel = sentinel
        self._failure = failure_function(sentinel)
        self.bytes_scanned = 0

    def positions(self, text: str) -> List[int]:
        """Scan ``text`` once, returning all sentinel start positions."""
        self.bytes_scanned += len(text)
        if fastpath.enabled():
            return find_positions(text, self.sentinel)
        return self._kmp_positions(text)

    def kmp_positions(self, text: str) -> List[int]:
        """Reference scan: the per-character KMP loop, charging the counter.

        Kept as the executable oracle for the differential property tests;
        :meth:`positions` routes here when the reference lanes are active.
        """
        self.bytes_scanned += len(text)
        return self._kmp_positions(text)

    def _kmp_positions(self, text: str) -> List[int]:
        matches: List[int] = []
        matched = 0
        pattern = self.sentinel
        table = self._failure
        for i, char in enumerate(text):
            while matched > 0 and char != pattern[matched]:
                matched = table[matched - 1]
            if char == pattern[matched]:
                matched += 1
            if matched == len(pattern):
                matches.append(i - len(pattern) + 1)
                matched = table[matched - 1]
        return matches

    def charge(self, nbytes: int) -> None:
        """Account ``nbytes`` of scan work without re-walking the text.

        Used by the template parse cache: a cache hit skips the physical
        re-scan of a wire string the DPC has already parsed, but the
        scan-cost model (Result 1) still charges ``z`` per response byte —
        the bytes did cross the proxy and were matched against the cache.
        Counter semantics are therefore identical in both lanes.
        """
        if nbytes < 0:
            raise ConfigurationError("cannot charge a negative byte count")
        self.bytes_scanned += nbytes

    def reset_counters(self) -> None:
        """Zero the scanned-byte counter."""
        self.bytes_scanned = 0
