"""Tests for fragment identity, metadata, and dependencies."""

import pytest

from repro.core.fragments import Dependency, Fragment, FragmentID, FragmentMetadata
from repro.errors import ConfigurationError


class TestFragmentID:
    def test_canonical_without_params(self):
        assert FragmentID.create("navbar").canonical() == "navbar"

    def test_canonical_sorts_params(self):
        a = FragmentID.create("listing", {"b": 2, "a": 1})
        b = FragmentID.create("listing", {"a": 1, "b": 2})
        assert a == b
        assert a.canonical() == "listing?a=1&b=2"

    def test_params_stringified(self):
        frag = FragmentID.create("f", {"n": 7})
        assert frag.canonical() == "f?n=7"

    def test_distinct_users_distinct_ids(self):
        """The Bob/Alice fix: same block, different params, different IDs."""
        bob = FragmentID.create("greeting", {"user": "bob"})
        alice = FragmentID.create("greeting", {"user": ""})
        assert bob != alice
        assert bob.canonical() != alice.canonical()

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            FragmentID.create("")

    def test_hashable_and_ordered(self):
        ids = {FragmentID.create("a"), FragmentID.create("b"), FragmentID.create("a")}
        assert len(ids) == 2
        assert FragmentID.create("a") < FragmentID.create("b")


class TestFragmentMetadata:
    def test_defaults(self):
        meta = FragmentMetadata()
        assert meta.cacheable
        assert meta.ttl is None
        assert meta.dependencies == ()

    def test_zero_ttl_rejected(self):
        with pytest.raises(ConfigurationError):
            FragmentMetadata(ttl=0)

    def test_negative_ttl_rejected(self):
        with pytest.raises(ConfigurationError):
            FragmentMetadata(ttl=-5)


class TestFragment:
    def test_size_in_bytes_utf8(self):
        frag = Fragment(FragmentID.create("f"), content="héllo")
        assert frag.size_bytes == 6  # é is two bytes

    def test_expiry(self):
        frag = Fragment(
            FragmentID.create("f"),
            content="x",
            metadata=FragmentMetadata(ttl=10.0),
            created_at=100.0,
        )
        assert not frag.expired(105.0)
        assert frag.expired(110.0)

    def test_no_ttl_never_expires(self):
        frag = Fragment(FragmentID.create("f"), content="x")
        assert not frag.expired(1e12)


class TestDependency:
    def test_table_match(self):
        dep = Dependency("products")
        assert dep.matches("products", "a", ())
        assert not dep.matches("reviews", "a", ())

    def test_key_narrowing(self):
        dep = Dependency("products", key="a")
        assert dep.matches("products", "a", ())
        assert not dep.matches("products", "b", ())

    def test_column_narrowing(self):
        dep = Dependency("products", column="price")
        assert dep.matches("products", "a", ("price", "title"))
        assert not dep.matches("products", "a", ("title",))

    def test_column_narrowing_insert_matches_all(self):
        """Inserts report no changed columns; treat as touching all."""
        dep = Dependency("products", column="price")
        assert dep.matches("products", "a", ())

    def test_where_filter_against_row(self):
        dep = Dependency("products", where_column="category", where_value="books")
        assert dep.matches("products", "a", (), row={"category": "books"})
        assert not dep.matches("products", "a", (), row={"category": "toys"})

    def test_where_filter_matches_old_image_too(self):
        """A row moving OUT of the watched set still invalidates."""
        dep = Dependency("products", where_column="category", where_value="books")
        assert dep.matches(
            "products",
            "a",
            ("category",),
            row={"category": "toys"},
            old_row={"category": "books"},
        )

    def test_where_filter_without_images_is_permissive(self):
        dep = Dependency("products", where_column="category", where_value="books")
        assert dep.matches("products", "a", ())
