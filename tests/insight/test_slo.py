"""SLO engine: objective validation, burn rates, the alert latch."""

import pytest

from repro.errors import ConfigurationError
from repro.insight.slo import (
    SloEngine,
    SloObjective,
    alerts_from_json_lines,
    alerts_to_json_lines,
    objective_from_spec,
)


def availability(**overrides):
    spec = dict(
        name="slo.availability", metric="request.served",
        comparator=">=", threshold=1.0, compliance_target=0.9,
        long_window_s=10.0, short_window_s=2.0,
        burn_threshold=2.0, min_samples=5,
    )
    spec.update(overrides)
    return SloObjective(**spec)


class TestObjective:
    def test_budget_and_goodness(self):
        objective = availability()
        assert objective.budget == pytest.approx(0.1)
        assert objective.good(1.0) and not objective.good(0.0)
        latency = availability(name="slo.latency", metric="request.elapsed_s",
                               comparator="<=", threshold=0.5)
        assert latency.good(0.4) and not latency.good(0.6)

    @pytest.mark.parametrize("overrides,match", [
        (dict(comparator="=="), "comparator"),
        (dict(compliance_target=1.0), "compliance_target"),
        (dict(compliance_target=0.0), "compliance_target"),
        (dict(short_window_s=0.0), "windows"),
        (dict(long_window_s=1.0, short_window_s=5.0), "windows"),
        (dict(burn_threshold=0.0), "burn_threshold"),
        (dict(min_samples=0), "min_samples"),
        (dict(name="NotDotted"), "dotted"),
        (dict(metric="nodots"), "dotted"),
    ])
    def test_validation(self, overrides, match):
        with pytest.raises(ConfigurationError, match=match):
            availability(**overrides)

    def test_objective_from_spec(self):
        objective = objective_from_spec(dict(
            name="slo.x", metric="a.b", comparator="<=", threshold=2.0,
        ))
        assert objective.threshold == 2.0
        with pytest.raises(ConfigurationError, match="bad SLO spec"):
            objective_from_spec(dict(name="slo.x", bogus=1))


class TestEngine:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            SloEngine([availability(), availability()])

    def test_burn_rates_need_min_samples(self):
        engine = SloEngine([availability()])
        for step in range(4):
            engine.observe("request.served", 1.0, now=step * 0.1)
        assert engine.burn_rates("slo.availability", now=0.4) == (None, None)

    def test_burn_rate_value(self):
        engine = SloEngine([availability()])
        # 10 samples in both windows, 3 bad: burn = 0.3 / 0.1 = 3.
        for step in range(10):
            good = step >= 3
            engine.observe("request.served", 1.0 if good else 0.0,
                           now=9.0 + step * 0.1)
        long_burn, short_burn = engine.burn_rates(
            "slo.availability", now=9.9
        )
        assert long_burn == pytest.approx(3.0)
        assert short_burn == pytest.approx(3.0)

    def test_alert_fires_once_and_rearms_after_recovery(self):
        engine = SloEngine([availability()])
        now = 0.0
        for step in range(20):       # sustained violation: all bad
            now = step * 0.1
            engine.observe("request.served", 0.0, now=now)
        assert engine.active_alerts() == ["slo.availability"]
        assert len(engine.alerts) == 1          # latched, not one per sample
        alert = engine.alerts[0]
        assert alert.objective == "slo.availability"
        assert alert.burn_long >= 2.0 and alert.burn_short >= 2.0
        for step in range(200):      # long recovery: all good
            now += 0.1
            engine.observe("request.served", 1.0, now=now)
        assert engine.active_alerts() == []
        for step in range(20):       # second violation fires a second alert
            now += 0.1
            engine.observe("request.served", 0.0, now=now)
        assert len(engine.alerts) == 2

    def test_short_window_spike_alone_does_not_fire(self):
        engine = SloEngine([availability(min_samples=2)])
        # Lots of good history in the long window...
        for step in range(50):
            engine.observe("request.served", 1.0, now=step * 0.1)
        # ...then a brief burst of badness inside the short window only.
        engine.observe("request.served", 0.0, now=5.05)
        engine.observe("request.served", 0.0, now=5.1)
        assert engine.alerts == []

    def test_unknown_metric_samples_ignored(self):
        engine = SloEngine([availability()])
        engine.observe("unrelated.metric", 0.0, now=1.0)
        assert engine.compliance("slo.availability") == 1.0

    def test_compliance_tracks_lifetime_fraction(self):
        engine = SloEngine([availability()])
        for step in range(8):
            engine.observe("request.served", 1.0 if step < 6 else 0.0,
                           now=step * 0.1)
        assert engine.compliance("slo.availability") == pytest.approx(0.75)

    def test_metric_rows_are_canonical(self):
        from repro.telemetry.naming import METRIC_NAMES

        engine = SloEngine([availability()])
        for name, _ in engine.metric_rows():
            assert name in METRIC_NAMES, name


class TestAlertExport:
    def test_json_lines_round_trip(self):
        engine = SloEngine([availability()])
        for step in range(20):
            engine.observe("request.served", 0.0, now=step * 0.1)
        text = alerts_to_json_lines(engine.alerts)
        assert alerts_from_json_lines(text) == engine.alerts
        assert alerts_from_json_lines("") == []
