"""Tests for workload trace export/replay."""

import io

import pytest

from repro.errors import ConfigurationError
from repro.workload import WorkloadGenerator, synthetic_pages
from repro.workload.trace import dump, from_records, load, to_records


@pytest.fixture
def trace():
    generator = WorkloadGenerator(pages=synthetic_pages(5), seed=8)
    return generator.materialize(30)


class TestRoundTrip:
    def test_records_roundtrip(self, trace):
        rebuilt = from_records(to_records(trace))
        assert len(rebuilt) == len(trace)
        for a, b in zip(trace, rebuilt):
            assert a.at == b.at
            assert a.request.url == b.request.url
            assert a.request.user_id == b.request.user_id
            assert a.request.session_id == b.request.session_id
            assert a.page_rank == b.page_rank

    def test_jsonl_roundtrip(self, trace):
        buffer = io.StringIO()
        dump(trace, buffer)
        buffer.seek(0)
        rebuilt = load(buffer)
        assert [t.request.url for t in rebuilt] == [
            t.request.url for t in trace
        ]

    def test_jsonl_is_line_per_record(self, trace):
        buffer = io.StringIO()
        dump(trace, buffer)
        lines = [l for l in buffer.getvalue().splitlines() if l.strip()]
        assert len(lines) == len(trace)

    def test_blank_lines_skipped(self):
        buffer = io.StringIO('\n{"at": 1.0, "path": "/x", "params": {}}\n\n')
        assert len(load(buffer)) == 1


class TestValidation:
    def test_missing_field_rejected(self):
        with pytest.raises(ConfigurationError):
            from_records([{"at": 1.0}])

    def test_backwards_time_rejected(self):
        records = [
            {"at": 2.0, "path": "/a", "params": {}},
            {"at": 1.0, "path": "/b", "params": {}},
        ]
        with pytest.raises(ConfigurationError):
            from_records(records)

    def test_defaults_filled(self):
        rebuilt = from_records([{"at": 0.5, "path": "/x", "params": {}}])
        assert rebuilt[0].request.user_id is None
        assert rebuilt[0].page_rank == 1


class TestReplayFidelity:
    def test_replayed_trace_drives_identical_results(self, trace):
        """Serving a trace directly equals serving its replayed copy."""
        from repro.appserver import HttpRequest
        from repro.network.latency import FREE
        from repro.sites.synthetic import SyntheticParams, build_server

        def serve_all(requests):
            server = build_server(SyntheticParams(), cost_model=FREE)
            return [server.handle(t.request).body_bytes for t in requests]

        rebuilt = from_records(to_records(trace))
        assert serve_all(trace) == serve_all(rebuilt)
