"""Figure 3(a): analytical cost-savings comparison vs cacheability.

Two curves over cacheability 20-100%:
* network savings (bytes served) — positive and increasing everywhere;
* firewall savings (scan cost, Result 1) — negative at low cacheability,
  crossing zero mid-range (the extra DPC tag scan must be paid for).
"""

from repro.analysis import TABLE2, scan_breakeven_cacheability
from repro.harness.experiments import figure_3a_rows

CACHEABILITIES = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def test_figure_3a(benchmark, report):
    rows = benchmark(lambda: figure_3a_rows(cacheabilities=CACHEABILITIES))

    report(
        "Figure 3(a): Cost Savings (%) vs Cacheability (analytical)",
        ["cacheability", "network savings (%)", "firewall savings (%)"],
        [
            [
                "%.0f%%" % (row.cacheability * 100),
                "%.2f" % row.analytical_network_savings_pct,
                "%.2f" % row.analytical_firewall_savings_pct,
            ]
            for row in rows
        ],
    )
    crossover = scan_breakeven_cacheability(TABLE2)
    report(
        "Result 1 break-even",
        ["quantity", "value"],
        [["cacheability where B_NC = 2 B_C", "%.1f%%" % (crossover * 100)]],
    )

    network = [row.analytical_network_savings_pct for row in rows]
    firewall = [row.analytical_firewall_savings_pct for row in rows]
    assert all(value > 0 for value in network)
    assert firewall[0] < 0 < firewall[-1]
    assert all(a <= b for a, b in zip(network, network[1:]))
    # Network savings exceed 70% at full cacheability (abstract's claim).
    assert network[-1] > 70.0
