"""Composable, clock-scheduled fault injectors.

Each injector models one production failure the paper's deployment story
glosses over: a DPC box crashing cold, the origin link partitioning or
degrading, invalidation messages getting lost, or the BEM's bookkeeping
desynchronizing from the DPC's slot array.  Injectors *wrap* existing
objects — they flip channel state, wipe slot arrays, corrupt directory
rows — and the core modules stay fault-unaware except for the recovery API
in :mod:`repro.faults.recovery`.

A :class:`FaultSchedule` drives a list of injectors off the simulated
clock: each injector has a start instant ``at`` and a ``duration``; the
schedule fires ``start``/``stop`` transitions as virtual time passes, and
answers "is the proxy reachable right now?" for the harness.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import List, Optional

from ..core.bem import BackEndMonitor
from ..core.cache_directory import CacheDirectory
from ..core.dpc import DynamicProxyCache
from ..errors import ConfigurationError, MessageDropped
from ..network.channel import Channel
from ..network.clock import SimulatedClock


@dataclass
class FaultContext:
    """The objects injectors act on — one deployment's moving parts."""

    clock: SimulatedClock
    bem: BackEndMonitor
    dpc: DynamicProxyCache
    channel: Optional[Channel] = None

    @property
    def directory(self) -> CacheDirectory:
        """The BEM's cache directory (shorthand for injector code)."""
        return self.bem.directory


class FaultInjector:
    """Base class: a scheduled fault with an activation window.

    Subclasses override :meth:`start` (fired once when the clock first
    reaches ``at``) and :meth:`stop` (fired once when it reaches
    ``at + duration``).  A zero duration makes the fault a one-shot event
    whose start and stop fire on the same tick.
    """

    def __init__(self, at: float, duration: float = 0.0) -> None:
        if at < 0 or duration < 0:
            raise ConfigurationError("fault times cannot be negative")
        self.at = at
        self.duration = duration
        self.started = False
        self.stopped = False

    def active(self, now: float) -> bool:
        """Whether ``now`` falls inside the fault's activation window."""
        return self.at <= now < self.at + self.duration

    def start(self, ctx: FaultContext) -> None:
        """Apply the fault.  Subclasses override."""

    def stop(self, ctx: FaultContext) -> None:
        """Heal the fault.  Subclasses override."""

    def proxy_down(self, now: float) -> bool:
        """Whether this fault makes the DPC unreachable at ``now``."""
        return False

    def _channel(self, ctx: FaultContext) -> Channel:
        if ctx.channel is None:
            raise ConfigurationError("%r needs a channel in the context" % self)
        return ctx.channel

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "%s(at=%.3f, duration=%.3f)" % (
            type(self).__name__, self.at, self.duration,
        )


#: Transition kinds in a :class:`FaultSchedule`'s heap.
_START, _STOP = 0, 1


class FaultSchedule:
    """Drives a set of injectors off the simulated clock.

    Pending start/stop transitions live in a min-heap keyed on fire time,
    so each :meth:`tick` pops only the transitions that are actually due
    instead of re-scanning every injector — ``tick`` is O(1) on quiet
    ticks regardless of schedule size.  An injector's stop is enqueued
    when its start fires, which keeps the zero-duration one-shot ordering
    (start then stop on the same tick) of the original linear scan.
    """

    def __init__(self, injectors: Optional[List[FaultInjector]] = None) -> None:
        self.injectors = sorted(injectors or [], key=lambda inj: inj.at)
        self._pending: List[tuple] = []
        self._arm()

    def _arm(self) -> None:
        """(Re)build the transition heap from the injector list."""
        self._pending = [
            (injector.at, sequence, _START, injector)
            for sequence, injector in enumerate(self.injectors)
        ]
        heapq.heapify(self._pending)
        self._sequence = len(self.injectors)

    def tick(self, ctx: FaultContext, now: float) -> None:
        """Fire every due start/stop transition at virtual time ``now``."""
        pending = self._pending
        while pending and pending[0][0] <= now:
            _, _, kind, injector = heapq.heappop(pending)
            if kind == _START:
                if not injector.started:
                    injector.started = True
                    injector.start(ctx)
                    heapq.heappush(
                        pending,
                        (
                            injector.at + injector.duration,
                            self._sequence,
                            _STOP,
                            injector,
                        ),
                    )
                    self._sequence += 1
            else:
                if injector.started and not injector.stopped:
                    injector.stopped = True
                    injector.stop(ctx)

    def proxy_down(self, now: float) -> bool:
        """Whether any injector currently makes the DPC unreachable."""
        return any(injector.proxy_down(now) for injector in self.injectors)

    def reset(self) -> None:
        """Re-arm every injector (for paired reruns with one schedule)."""
        for injector in self.injectors:
            injector.started = False
            injector.stopped = False
        self._arm()


class DpcCrash(FaultInjector):
    """The proxy box dies: slot array wiped, cold restart after a downtime.

    While down, the proxy is unreachable (the harness serves the paper's
    fallback — fully dynamic pages — or fails requests).  The wipe bumps
    the DPC epoch, which is what the BEM-side resync protocol later detects
    on the first post-restart exchange.
    """

    def __init__(self, at: float, downtime: float = 1.0) -> None:
        super().__init__(at, downtime)

    def start(self, ctx: FaultContext) -> None:
        """Wipe the slot array (this is the crash; clear() bumps the epoch)."""
        ctx.dpc.clear()

    def proxy_down(self, now: float) -> bool:
        """Unreachable from the crash until the restart completes."""
        return self.active(now)


class ChannelPartition(FaultInjector):
    """Hard partition of a link for a window: every send raises."""

    def start(self, ctx: FaultContext) -> None:
        """Cut the link."""
        self._channel(ctx).close()

    def stop(self, ctx: FaultContext) -> None:
        """Heal the partition."""
        self._channel(ctx).reopen()


class ChannelDegradation(FaultInjector):
    """Soft fault: every message on the link pays extra delay for a window."""

    def __init__(self, at: float, duration: float, extra_delay_s: float) -> None:
        super().__init__(at, duration)
        if extra_delay_s < 0:
            raise ConfigurationError("extra delay cannot be negative")
        self.extra_delay_s = extra_delay_s

    def start(self, ctx: FaultContext) -> None:
        """Install the delay hook on the channel."""
        self._channel(ctx).add_fault(self._delay)

    def stop(self, ctx: FaultContext) -> None:
        """Remove the delay hook."""
        self._channel(ctx).remove_fault(self._delay)

    def _delay(self, message) -> float:
        return self.extra_delay_s


class MessageLoss(FaultInjector):
    """Probabilistic, seeded message drop on a channel for a window."""

    def __init__(
        self,
        at: float,
        duration: float,
        drop_probability: float = 0.3,
        seed: int = 0,
    ) -> None:
        super().__init__(at, duration)
        if not 0.0 <= drop_probability <= 1.0:
            raise ConfigurationError("drop_probability must be in [0, 1]")
        self.drop_probability = drop_probability
        self._rng = random.Random(seed)

    def start(self, ctx: FaultContext) -> None:
        """Install the lossy hook on the channel."""
        self._channel(ctx).add_fault(self._maybe_drop)

    def stop(self, ctx: FaultContext) -> None:
        """Remove the lossy hook."""
        self._channel(ctx).remove_fault(self._maybe_drop)

    def _maybe_drop(self, message) -> float:
        if self._rng.random() < self.drop_probability:
            raise MessageDropped("injected loss (p=%.2f)" % self.drop_probability)
        return 0.0


#: Corruption modes understood by :class:`DirectoryCorruption`.
CORRUPTION_MODES = ("flip_valid", "leak_key", "drop_slot")


class DirectoryCorruption(FaultInjector):
    """One-shot BEM↔DPC desync: corrupt bookkeeping, not content.

    Modes (all seeded and deterministic):

    * ``flip_valid`` — flip ``isValid`` on up to ``count`` valid entries
      *without* the freeList bookkeeping, leaving their dpcKeys neither
      free nor reusable (the slow capacity leak a crashed invalidation
      pass would cause).
    * ``leak_key`` — pop up to ``count`` keys off the freeList and discard
      them outright.
    * ``drop_slot`` — empty the DPC slot behind up to ``count`` valid
      entries while the directory still believes they are resident; the
      next GET fails loudly (fail-stop) and triggers recovery.

    None of the modes can resurrect stale content, so they degrade hit
    ratio and capacity but never correctness — matching the safety story
    the recovery protocol is obliged to preserve.
    """

    def __init__(
        self,
        at: float,
        mode: str = "flip_valid",
        count: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__(at, duration=0.0)
        if mode not in CORRUPTION_MODES:
            raise ConfigurationError("mode must be one of %s" % (CORRUPTION_MODES,))
        if count <= 0:
            raise ConfigurationError("count must be positive")
        self.mode = mode
        self.count = count
        self._rng = random.Random(seed)
        self.corrupted = 0

    def start(self, ctx: FaultContext) -> None:
        """Apply the corruption (one shot)."""
        directory = ctx.directory
        if self.mode == "leak_key":
            leaked = 0
            while leaked < self.count and len(directory.free_list):
                directory.free_list.pop()  # discarded: neither free nor valid
                leaked += 1
            self.corrupted = leaked
            return
        victims = sorted(directory.valid_entries(), key=lambda e: e.dpc_key)
        if not victims:
            return
        picks = self._rng.sample(victims, min(self.count, len(victims)))
        for entry in picks:
            if self.mode == "flip_valid":
                # Desync on purpose: flip the flag but skip every piece of
                # bookkeeping _invalidate_entry would have done.
                entry.is_valid = False
            else:  # drop_slot
                ctx.dpc._slots[entry.dpc_key] = None
        self.corrupted = len(picks)
