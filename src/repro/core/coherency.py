"""Cache coherency across distributed forward-proxy DPCs (§7 extension).

With multiple DPCs "multiple copies of a particular fragment may reside on
different dynamic proxy caches...  Some mechanism must be in place to ensure
that correct responses are served to end users from the caching system."

The reproduction keeps the paper's single-BEM architecture: the origin's
BEM remains the sole authority over validity, holding one cache directory
*per proxy* (fragment copies on different proxies are independent entries
with independent dpcKeys).  Coherency then reduces to fanning every
invalidation out to all per-proxy directories, and the dpcKey trick still
eliminates explicit BEM->DPC messages — an invalidated copy is simply
overwritten by the next SET routed to that proxy.

:class:`ProxyGroup` owns the per-proxy (BEM, DPC) pairs and the fan-out.
``coherency_messages`` counts the logical invalidation fan-out so the
scalability bench can chart coherency traffic against the proxy count.

A deployment may route the fan-out over a real (fault-injectable) control
channel via :meth:`ProxyGroup.use_control_plane`, optionally retried by a
:class:`repro.faults.retry.ReliableDelivery` policy.  When delivery to a
member dead-letters, the group falls back to the only safe action — flush
that member's directory — so a lost invalidation can degrade hit ratio but
can never cause a stale fragment to be served.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..database.triggers import TriggerBus
from ..errors import ConfigurationError, FaultError, NetworkError
from ..network.channel import Channel
from ..network.clock import SimulatedClock
from ..network.message import request_message
from .bem import BackEndMonitor
from .dpc import DynamicProxyCache
from .replacement import make_policy
from .template import DEFAULT_CONFIG, TemplateConfig

#: Payload size of one logical invalidation message on the control plane
#: (fragment identity plus framing; sized like a small HTTP control call).
INVALIDATION_MESSAGE_BYTES = 64


class ProxyGroup:
    """A set of named forward proxies sharing one origin BEM authority."""

    def __init__(
        self,
        capacity_per_proxy: int = 1024,
        clock: Optional[SimulatedClock] = None,
        template_config: TemplateConfig = DEFAULT_CONFIG,
        policy_name: str = "lru",
    ) -> None:
        self.clock = clock if clock is not None else SimulatedClock()
        self.capacity = capacity_per_proxy
        self.template_config = template_config
        self.policy_name = policy_name
        self._members: Dict[str, Tuple[BackEndMonitor, DynamicProxyCache]] = {}
        self._buses: List[TriggerBus] = []
        self.coherency_messages = 0
        self.control_channel: Optional[Channel] = None
        self.delivery = None  # duck-typed: .deliver(send_fn), e.g. ReliableDelivery
        self.dead_letter_flushes = 0

    # -- membership ----------------------------------------------------------------

    def add_proxy(self, name: str) -> Tuple[BackEndMonitor, DynamicProxyCache]:
        """Add an edge proxy: a fresh (BEM, DPC) pair."""
        if name in self._members:
            raise ConfigurationError("proxy %r already in group" % name)
        bem = BackEndMonitor(
            capacity=self.capacity,
            clock=self.clock,
            policy=make_policy(self.policy_name),
            template_config=self.template_config,
        )
        for bus in self._buses:
            bem.attach_database(bus)
        dpc = DynamicProxyCache(
            capacity=self.capacity, template_config=self.template_config, name=name
        )
        self._members[name] = (bem, dpc)
        return bem, dpc

    def remove_proxy(self, name: str) -> None:
        """Remove a proxy and detach its invalidation wiring."""
        if name not in self._members:
            raise ConfigurationError("proxy %r not in group" % name)
        bem, _ = self._members.pop(name)
        bem.invalidation.detach_all()

    def member(self, name: str) -> Tuple[BackEndMonitor, DynamicProxyCache]:
        """The (BEM, DPC) pair for a proxy name."""
        try:
            return self._members[name]
        except KeyError:
            raise ConfigurationError("proxy %r not in group" % name) from None

    def names(self) -> List[str]:
        """All member proxy names, sorted."""
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    # -- coherency ----------------------------------------------------------------

    def attach_database(self, bus: TriggerBus) -> None:
        """Every member BEM directory observes the data source directly.

        Each database change reaches every per-proxy directory; the
        message count models the invalidation fan-out a distributed
        deployment would pay on its control plane.
        """
        self._buses.append(bus)
        for bem, _ in self._members.values():
            bem.attach_database(bus)
        bus.subscribe(self._count_fanout)

    def _count_fanout(self, event) -> None:
        self.coherency_messages += len(self._members)

    def use_control_plane(self, channel: Channel, delivery=None) -> None:
        """Route explicit invalidation fan-out over a real channel.

        ``delivery`` is an optional retry wrapper (duck-typed: it must offer
        ``deliver(send_fn)`` and raise on exhaustion, e.g.
        :class:`repro.faults.retry.ReliableDelivery`).  Without one, a
        single failed send immediately dead-letters.
        """
        self.control_channel = channel
        self.delivery = delivery

    def _deliver_control(self) -> bool:
        """One control-plane invalidation message; True if it got through."""
        if self.control_channel is None:
            return True
        send = lambda: self.control_channel.send(  # noqa: E731 - tiny thunk
            request_message(INVALIDATION_MESSAGE_BYTES)
        )
        try:
            if self.delivery is not None:
                self.delivery.deliver(send)
            else:
                send()
            return True
        except (NetworkError, FaultError):
            return False

    def _dead_letter(self, bem: BackEndMonitor) -> None:
        """Invalidation lost for a member: the only safe fallback is to
        flush that member's directory, trading hit ratio for correctness."""
        bem.flush()
        self.dead_letter_flushes += 1

    def invalidate_fragment(self, name: str, params=None) -> int:
        """Explicit invalidation broadcast to every proxy's directory."""
        invalidated = 0
        for bem, _ in self._members.values():
            self.coherency_messages += 1
            if self._deliver_control():
                if bem.invalidate_fragment(name, params):
                    invalidated += 1
            else:
                self._dead_letter(bem)
        return invalidated

    def invalidate_block(self, name: str) -> int:
        """Broadcast block-wide invalidation to every proxy."""
        invalidated = 0
        for bem, _ in self._members.values():
            self.coherency_messages += 1
            if self._deliver_control():
                invalidated += bem.invalidate_block(name)
            else:
                self._dead_letter(bem)
        return invalidated

    def flush_all(self) -> int:
        """Flush every proxy's directory, objects, and slots."""
        flushed = 0
        for name, (bem, dpc) in self._members.items():
            flushed += bem.flush()
            dpc.clear()
            self.coherency_messages += 1
        return flushed

    # -- reporting ------------------------------------------------------------------

    def group_hit_ratio(self) -> float:
        """Hit ratio aggregated over all member BEMs."""
        hits = sum(bem.stats.fragment_hits for bem, _ in self._members.values())
        misses = sum(bem.stats.fragment_misses for bem, _ in self._members.values())
        total = hits + misses
        if total == 0:
            return 0.0
        return hits / total
