"""Exporters: JSON-lines and aligned text for metrics, trees for traces.

Two machine formats and two human formats:

* :func:`to_json_lines` / :func:`parse_json_lines` — one JSON object per
  row (``{"name": ..., "value": ...}``), round-trippable back into a
  fresh :class:`~repro.telemetry.metrics.MetricsRegistry`.
* :func:`span_to_dict` / :func:`spans_to_json_lines` and their inverses
  :func:`span_from_dict` / :func:`spans_from_json_lines` — span trees as
  nested JSON objects, one trace per line, round-trippable with root
  annotations (overload/chaos outcomes, recovery epochs) intact.
  Non-JSON meta values are coerced to strings at export time so a trace
  with rich annotations can never fail to serialize.
* :func:`render_metrics` — the classic two-column aligned table.
* :func:`render_span_tree` — an indented tree with virtual durations,
  statuses, and metadata, suitable for terminals and docs.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Tuple

from .metrics import MetricsRegistry, Row
from .tracing import Span


# -- metrics: JSON lines -----------------------------------------------------


def to_json_lines(rows: Iterable[Row]) -> str:
    """Serialize ``(name, value)`` rows, one JSON object per line."""
    return "\n".join(
        json.dumps({"name": name, "value": value}, sort_keys=True)
        for name, value in rows
    )


def parse_json_lines(text: str) -> List[Row]:
    """Parse :func:`to_json_lines` output back into ``(name, value)`` rows.

    Blank lines are skipped; JSON arrays come back as lists (matching how
    histogram bucket rows are emitted), so a parse → re-emit round trip is
    byte-identical.
    """
    rows: List[Row] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        rows.append((record["name"], record["value"]))
    return rows


def registry_from_rows(rows: Iterable[Row]) -> MetricsRegistry:
    """Rebuild a registry whose ``collect()`` replays ``rows`` verbatim.

    The reconstruction is value-level (ad-hoc rows), not instrument-level:
    it exists so exported snapshots can be re-rendered and diffed offline,
    not to resume counting.
    """
    registry = MetricsRegistry()
    for name, value in rows:
        registry.record(name, value)
    return registry


# -- metrics: aligned text ---------------------------------------------------


def render_metrics(rows: Iterable[Row], title: Optional[str] = None) -> str:
    """Render rows as the two-column aligned table the harness always used.

    Implemented locally (rather than importing the harness reporting
    helpers) so the telemetry package stays a leaf dependency; the output
    — headers, ``-`` rules, two-space gutters, trailing padding — is
    byte-identical with ``repro.harness.reporting.format_table``, and a
    test keeps it that way.
    """
    def cell(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return "%.4f" % value
        return str(value)

    materialized: List[Tuple[str, str]] = [
        (str(name), cell(value)) for name, value in rows
    ]
    headers = ("metric", "value")
    widths = [len(headers[0]), len(headers[1])]
    for name, value in materialized:
        widths[0] = max(widths[0], len(name))
        widths[1] = max(widths[1], len(value))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for name, value in materialized:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip((name, value), widths))
        )
    if title is not None:
        return "%s\n%s" % (title, "\n".join(lines))
    return "\n".join(lines)


# -- traces ------------------------------------------------------------------


def _json_safe(value: object) -> object:
    """Coerce one meta value to something ``json.dumps`` accepts.

    Annotations are free-form (``root.annotate(epoch=3, outcome="shed")``)
    and occasionally carry rich objects; exporting must never crash on
    them, so anything beyond the JSON scalar/collection types degrades to
    its ``str()`` form.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return str(value)


def span_to_dict(span: Span) -> dict:
    """A span subtree as plain nested dicts (JSON-ready).

    Meta (annotations) ride along on every level — the root's
    ``outcome=``/``kind=``/``epoch=`` verdicts from the overload and chaos
    harnesses included — coerced through :func:`_json_safe`.
    """
    record = {
        "name": span.name,
        "trace_id": span.trace_id,
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "status": span.status,
    }
    if span.meta:
        record["meta"] = {
            str(key): _json_safe(value) for key, value in span.meta.items()
        }
    if span.children:
        record["children"] = [span_to_dict(child) for child in span.children]
    return record


def span_from_dict(record: dict) -> Span:
    """Rebuild a (closed) :class:`Span` tree from :func:`span_to_dict` output.

    The reconstructed spans are detached from any tracer — they exist for
    offline analysis and re-rendering — but carry the same name, trace ID,
    virtual timestamps, status, meta, and children, so
    ``span_to_dict(span_from_dict(record)) == record`` holds exactly.
    """
    span = Span(
        name=record["name"],
        trace_id=record["trace_id"],
        start=record["start"],
        meta=dict(record.get("meta", {})),
    )
    span.end = record["end"]
    span.status = record.get("status", "ok")
    span.children = [
        span_from_dict(child) for child in record.get("children", [])
    ]
    return span


def spans_to_json_lines(roots: Iterable[Span]) -> str:
    """Serialize whole traces, one JSON object (nested tree) per line."""
    return "\n".join(
        json.dumps(span_to_dict(root), sort_keys=True) for root in roots
    )


def spans_from_json_lines(text: str) -> List[Span]:
    """Parse :func:`spans_to_json_lines` output back into span trees.

    Blank lines are skipped.  A parse → re-emit round trip is
    byte-identical, annotations included — the machine-format twin of
    :func:`parse_json_lines` for traces.
    """
    roots: List[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        roots.append(span_from_dict(json.loads(line)))
    return roots


def _format_meta(meta: dict) -> str:
    return " ".join("%s=%s" % (key, meta[key]) for key in meta)


def render_span_tree(root: Span, indent: str = "  ") -> str:
    """Pretty-print one trace as an indented tree with virtual durations.

    Example::

        request  12.340ms  url=/page.jsp outcome=miss
          channel.transfer  1.000ms
          bem.process  10.340ms
            script.exec  9.100ms
    """
    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        parts = ["%s%s" % (indent * depth, span.name),
                 "%.3fms" % (span.duration * 1000.0)]
        if span.status != "ok":
            parts.append("status=%s" % span.status)
        if span.meta:
            parts.append(_format_meta(span.meta))
        lines.append("  ".join(parts))
        for child in span.children:
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)
