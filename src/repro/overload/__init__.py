"""Overload protection: bounded queues, deadlines, shedding, brown-out.

The paper's testbed models an origin with infinite capacity, which hides
the regime where a proxy cache earns its keep: the flash crowd.  This
subpackage gives the reproduction a finite origin (bounded c-server
queues), end-to-end request deadlines, admission control and a circuit
breaker applied only to origin-bound misses, page- and fragment-grain
stale serving during brown-out, and a harness that measures how a
DPC-enabled deployment sheds gracefully while the no-cache baseline
collapses.
"""

from .accounting import DROP_REASONS, DropLedger
from .admission import (
    AdmissionPolicy,
    CoDelPolicy,
    POLICIES,
    StaticThresholdPolicy,
    TokenBucketPolicy,
    make_policy,
)
from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerStats, CircuitBreaker
from .harness import (
    OUTCOMES,
    OverloadBucket,
    OverloadConfig,
    OverloadHarness,
    OverloadResult,
    percentile,
    run_overload,
)
from .queues import (
    DISCIPLINES,
    BoundedQueue,
    QueuePlacement,
    QueueStats,
)
from .stale import StaleCacheStats, StalePageCache

__all__ = [
    "DROP_REASONS",
    "DropLedger",
    "AdmissionPolicy",
    "StaticThresholdPolicy",
    "CoDelPolicy",
    "TokenBucketPolicy",
    "POLICIES",
    "make_policy",
    "CircuitBreaker",
    "BreakerStats",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BoundedQueue",
    "QueuePlacement",
    "QueueStats",
    "DISCIPLINES",
    "StalePageCache",
    "StaleCacheStats",
    "OverloadConfig",
    "OverloadBucket",
    "OverloadResult",
    "OverloadHarness",
    "OUTCOMES",
    "percentile",
    "run_overload",
]
