"""Simulated clock shared by all components of a testbed.

The paper's experiments run in real time on a LAN; ours run in virtual time
so they are deterministic and fast.  Every component that needs "now" (TTL
expiry in the BEM, latency accounting, arrival processes) holds a reference
to one :class:`SimulatedClock` and never consults the wall clock.

Time is a float in seconds since the start of the simulation.

The clock also carries a heap-backed :class:`EventQueue`.  Components that
want work to happen at a future virtual time — fault activations, timers,
deferred maintenance — :meth:`~SimulatedClock.schedule` a callback instead
of polling every tick; the clock fires due callbacks in timestamp order as
:meth:`~SimulatedClock.advance` / :meth:`~SimulatedClock.advance_to` sweep
past them.  A run that schedules nothing pays nothing: the due-event check
is a single empty-list test.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..errors import ConfigurationError


class EventQueue:
    """A min-heap of timestamped callbacks.

    Entries are ``(time, sequence, callback)``; the monotone sequence number
    breaks timestamp ties in insertion order and keeps the heap comparisons
    away from the (uncomparable) callbacks.
    """

    __slots__ = ("_heap", "_sequence")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0

    def push(self, at: float, callback: Callable[[], None]) -> None:
        """Enqueue ``callback`` to fire at virtual time ``at``."""
        heapq.heappush(self._heap, (at, self._sequence, callback))
        self._sequence += 1

    def peek_time(self) -> Optional[float]:
        """Earliest scheduled timestamp, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop_due(self, now: float) -> Optional[Tuple[float, Callable[[], None]]]:
        """Pop the earliest event if it is due at or before ``now``."""
        if not self._heap or self._heap[0][0] > now:
            return None
        at, _, callback = heapq.heappop(self._heap)
        return at, callback

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class SimulatedClock:
    """A monotonically non-decreasing virtual clock.

    >>> clock = SimulatedClock()
    >>> clock.now()
    0.0
    >>> clock.advance(1.5)
    1.5
    >>> clock.now()
    1.5
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ConfigurationError("clock cannot start before time 0")
        self._now = float(start)
        self._events = EventQueue()

    def now(self) -> float:
        """Return the current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> float:
        """Run ``callback`` once the clock has advanced ``delay`` seconds.

        Returns the absolute fire time.  Callbacks fire *during* the
        :meth:`advance` / :meth:`advance_to` call that sweeps past their
        timestamp, in timestamp order (ties in scheduling order), with the
        clock already set to at least their fire time.
        """
        if delay < 0:
            raise ConfigurationError("cannot schedule into the past (%r)" % delay)
        at = self._now + delay
        self._events.push(at, callback)
        return at

    def schedule_at(self, timestamp: float, callback: Callable[[], None]) -> float:
        """Run ``callback`` when the clock reaches absolute ``timestamp``.

        Timestamps at or before the current time fire on the next advance
        (including a zero-length one).
        """
        if timestamp < 0:
            raise ConfigurationError("cannot schedule before time 0")
        self._events.push(timestamp, callback)
        return timestamp

    def pending_events(self) -> int:
        """Number of scheduled callbacks that have not fired yet."""
        return len(self._events)

    def _fire_due(self) -> None:
        """Fire every scheduled callback due at or before the current time.

        A callback may schedule further events; those fire in the same sweep
        when they are also due.  The clock never moves backwards: an event
        with a timestamp in the past fires with ``now`` unchanged.
        """
        events = self._events
        if not events:
            return
        due = events.pop_due(self._now)
        while due is not None:
            due[1]()
            due = events.pop_due(self._now)

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time.

        Advancing by a negative amount is a programming error: simulated
        time, like real time, only moves forward.  Any callbacks scheduled
        at or before the new time fire before this returns.
        """
        if seconds < 0:
            raise ConfigurationError(
                "cannot advance the clock by a negative amount (%r)" % seconds
            )
        self._now += seconds
        if self._events:
            self._fire_due()
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``.

        Moving to a timestamp in the past is ignored (the clock stays put);
        this makes it safe to merge event streams that are already sorted.
        Due callbacks fire exactly as in :meth:`advance`.
        """
        if timestamp > self._now:
            self._now = float(timestamp)
        if self._events:
            self._fire_due()
        return self._now

    def reset(self) -> None:
        """Rewind to time zero and drop scheduled events.

        Only intended for test fixtures."""
        self._now = 0.0
        self._events = EventQueue()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SimulatedClock(t=%.6f)" % self._now
