"""Baseline: back-end fragment caching (§3.1).

Back-end caches (presentation-layer HTML fragment caches, component caches)
"guarantee the correctness of the output ... [but] deliver all content from
the dynamic content application itself, and thus do not address
network-related delays".

This monitor is a drop-in for the BEM in the :class:`PageBuilder` protocol:
it keeps the same cache directory, TTLs, and trigger-driven invalidation,
but on a hit it emits the cached fragment *content inline* (a Literal)
instead of a GET tag.  Computation is saved; every byte still crosses the
origin link.  Comparing its byte counts against the BEM's isolates exactly
the bandwidth dimension of the paper's argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core.bem import ObjectCache
from ..core.cache_directory import CacheDirectory
from ..core.fragments import FragmentID, FragmentMetadata
from ..core.invalidation import InvalidationManager
from ..core.replacement import ReplacementPolicy
from ..core.template import Instruction, Literal
from ..network.clock import SimulatedClock


@dataclass
class BackendCacheStats:
    blocks_processed: int = 0
    hits: int = 0
    misses: int = 0
    bytes_generated: int = 0
    bytes_served_from_cache: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fragment hits over all cacheable-block accesses."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


class BackendFragmentCache:
    """BEM-compatible monitor that caches fragments *inside* the site."""

    def __init__(
        self,
        capacity: int = 1024,
        clock: Optional[SimulatedClock] = None,
        policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        self.clock = clock if clock is not None else SimulatedClock()
        self.directory = CacheDirectory(capacity, policy=policy)
        self.invalidation = InvalidationManager(self.directory)
        self.objects = ObjectCache(self.clock)  # intermediate-object memo
        self._contents: Dict[int, str] = {}  # dpcKey -> cached fragment body
        self.stats = BackendCacheStats()

    # -- PageBuilder protocol -------------------------------------------------

    def process_block(
        self,
        fragment_id: FragmentID,
        metadata: FragmentMetadata,
        generate: Callable[[], str],
    ) -> Instruction:
        """Same directory dance as the BEM, but output is always inline."""
        self.stats.blocks_processed += 1
        now = self.clock.now()
        if not metadata.cacheable:
            content = generate()
            self.stats.bytes_generated += len(content.encode("utf-8"))
            return Literal(content)

        entry = self.directory.lookup(fragment_id, now)
        if entry is not None:
            self.stats.hits += 1
            content = self._contents[entry.dpc_key]
            self.stats.bytes_served_from_cache += len(content.encode("utf-8"))
            return Literal(content)

        self.stats.misses += 1
        content = generate()
        size = len(content.encode("utf-8"))
        self.stats.bytes_generated += size
        entry = self.directory.insert(fragment_id, metadata, size, now)
        self._contents[entry.dpc_key] = content
        if metadata.dependencies:
            self.invalidation.watch(fragment_id, tuple(metadata.dependencies))
        return Literal(content)

    # -- management (mirrors BackEndMonitor's surface) ----------------------------

    def attach_database(self, bus) -> None:
        """Wire a database's trigger bus into invalidation."""
        self.invalidation.attach(bus)

    def invalidate_fragment(
        self, name: str, params: Optional[Dict[str, object]] = None
    ) -> bool:
        """Explicitly invalidate one fragment by identity."""
        return self.directory.invalidate(FragmentID.create(name, params))

    def flush(self) -> int:
        """Invalidate everything and drop cached bodies."""
        self._contents.clear()
        return self.directory.invalidate_all()

    @property
    def hit_ratio(self) -> float:
        """Fragment hits over all cacheable-block accesses."""
        return self.stats.hit_ratio
