"""Tests for the Back End Monitor's run-time protocol."""

import pytest

from repro.core.bem import BackEndMonitor, ObjectCache
from repro.core.fragments import Dependency, FragmentID, FragmentMetadata
from repro.core.template import GetInstruction, Literal, SetInstruction, TemplateConfig
from repro.database import Database, schema
from repro.errors import ConfigurationError
from repro.network.clock import SimulatedClock


def fid(name, **params):
    return FragmentID.create(name, params or None)


@pytest.fixture
def bem():
    return BackEndMonitor(capacity=16)


class TestProtocol:
    def test_case1_miss_emits_set_with_content(self, bem):
        instruction = bem.process_block(fid("f"), FragmentMetadata(), lambda: "hello")
        assert isinstance(instruction, SetInstruction)
        assert instruction.content == "hello"
        assert bem.stats.fragment_misses == 1

    def test_case2_hit_emits_get_and_skips_generator(self, bem):
        bem.process_block(fid("f"), FragmentMetadata(), lambda: "hello")
        calls = []

        def generate():
            calls.append(1)
            return "regenerated"

        instruction = bem.process_block(fid("f"), FragmentMetadata(), generate)
        assert isinstance(instruction, GetInstruction)
        assert calls == []  # the whole point: the block body never ran
        assert bem.stats.fragment_hits == 1

    def test_get_reuses_set_key(self, bem):
        set_instr = bem.process_block(fid("f"), FragmentMetadata(), lambda: "x")
        get_instr = bem.process_block(fid("f"), FragmentMetadata(), lambda: "x")
        assert get_instr.key == set_instr.key

    def test_non_cacheable_block_is_literal_and_always_runs(self, bem):
        meta = FragmentMetadata(cacheable=False)
        first = bem.process_block(fid("nc"), meta, lambda: "a")
        second = bem.process_block(fid("nc"), meta, lambda: "b")
        assert first == Literal("a")
        assert second == Literal("b")
        assert bem.stats.cacheable_blocks == 0

    def test_ttl_expiry_regenerates(self):
        clock = SimulatedClock()
        bem = BackEndMonitor(capacity=8, clock=clock)
        meta = FragmentMetadata(ttl=10.0)
        bem.process_block(fid("f"), meta, lambda: "v1")
        clock.advance(11.0)
        instruction = bem.process_block(fid("f"), meta, lambda: "v2")
        assert isinstance(instruction, SetInstruction)
        assert instruction.content == "v2"

    def test_bytes_accounting(self, bem):
        bem.process_block(fid("f"), FragmentMetadata(), lambda: "x" * 100)
        bem.process_block(fid("f"), FragmentMetadata(), lambda: "x" * 100)
        assert bem.stats.bytes_generated == 100
        assert bem.stats.bytes_served_from_dpc == 100

    def test_hit_ratio_property(self, bem):
        bem.process_block(fid("f"), FragmentMetadata(), lambda: "x")
        bem.process_block(fid("f"), FragmentMetadata(), lambda: "x")
        assert bem.hit_ratio == 0.5

    def test_capacity_must_fit_key_width(self):
        with pytest.raises(ConfigurationError):
            BackEndMonitor(capacity=1000, template_config=TemplateConfig(key_width=2))


class TestDatabaseIntegration:
    def test_update_invalidates_dependent_fragment(self, bem):
        db = Database()
        table = db.create_table(schema("t", [("k", "int"), ("v", "int")]))
        table.insert({"k": 1, "v": 0})
        bem.attach_database(db.bus)

        meta = FragmentMetadata(dependencies=(Dependency("t", key=1),))
        bem.process_block(fid("f"), meta, lambda: "v0")
        table.update({"v": 1}, key=1)
        instruction = bem.process_block(fid("f"), meta, lambda: "v1")
        assert isinstance(instruction, SetInstruction)
        assert instruction.content == "v1"

    def test_unrelated_update_leaves_fragment_cached(self, bem):
        db = Database()
        table = db.create_table(schema("t", [("k", "int"), ("v", "int")]))
        table.insert({"k": 1, "v": 0})
        table.insert({"k": 2, "v": 0})
        bem.attach_database(db.bus)

        meta = FragmentMetadata(dependencies=(Dependency("t", key=1),))
        bem.process_block(fid("f"), meta, lambda: "v0")
        table.update({"v": 9}, key=2)  # different row
        instruction = bem.process_block(fid("f"), meta, lambda: "never")
        assert isinstance(instruction, GetInstruction)


class TestManagement:
    def test_explicit_invalidate_fragment(self, bem):
        bem.process_block(fid("g", user="bob"), FragmentMetadata(), lambda: "x")
        assert bem.invalidate_fragment("g", {"user": "bob"})
        assert not bem.invalidate_fragment("g", {"user": "bob"})

    def test_invalidate_block_across_params(self, bem):
        for user in ("a", "b", "c"):
            bem.process_block(fid("g", user=user), FragmentMetadata(), lambda: "x")
        assert bem.invalidate_block("g") == 3

    def test_flush(self, bem):
        bem.process_block(fid("a"), FragmentMetadata(), lambda: "x")
        bem.process_block(fid("b"), FragmentMetadata(), lambda: "x")
        assert bem.flush() == 2
        assert bem.directory.valid_count() == 0

    def test_with_policy_constructor(self):
        bem = BackEndMonitor.with_policy(16, "lfu")
        assert bem.directory.policy.name == "lfu"


class TestDeadlinePressure:
    """The stale-on-late fallback in :meth:`process_block`."""

    def make(self, clock, grace_s=100.0):
        from repro.faults.degradation import GracefulDegrader

        bem = BackEndMonitor(capacity=8, clock=clock)
        degrader = GracefulDegrader(bem=bem, grace_s=grace_s)
        bem.attach_degrader(degrader)
        return bem

    def test_fresh_entry_under_pressure_keeps_recency(self, clock):
        bem = self.make(clock)
        meta = FragmentMetadata(ttl=50.0)
        bem.process_block(fid("f"), meta, lambda: "v1")
        clock.advance(5.0)
        bem.deadline_at = clock.now()  # the request is already late
        instruction = bem.process_block(fid("f"), meta, lambda: "v2")
        assert isinstance(instruction, GetInstruction)
        # The fresh entry went through the normal lookup() path: recency
        # and hit bookkeeping advance, so leaning on a fragment under
        # deadline pressure does not turn it into an LRU eviction victim.
        entry = bem.directory.peek(fid("f"))
        assert entry.last_access == clock.now()
        assert entry.hits == 1
        assert bem.stats.fragment_hits == 1
        assert bem.stats.stale_fragment_serves == 0

    def test_expired_within_grace_serves_stale_without_running_block(self, clock):
        bem = self.make(clock)
        meta = FragmentMetadata(ttl=1.0)
        bem.process_block(fid("f"), meta, lambda: "v1")
        clock.advance(5.0)  # expired, but inside the grace window
        bem.deadline_at = clock.now()
        calls = []
        instruction = bem.process_block(
            fid("f"), meta, lambda: calls.append(1) or "v2"
        )
        assert isinstance(instruction, GetInstruction)
        assert calls == []  # no regeneration for an already-late request
        assert bem.stats.stale_fragment_serves == 1


class TestObjectCache:
    def test_fetch_computes_once(self, clock):
        cache = ObjectCache(clock)
        calls = []
        compute = lambda: calls.append(1) or {"x": 1}
        first = cache.fetch("k", compute)
        second = cache.fetch("k", compute)
        assert first is second
        assert len(calls) == 1
        assert cache.hits == 1

    def test_ttl_expiry(self, clock):
        cache = ObjectCache(clock)
        cache.fetch("k", lambda: "v1", ttl=5.0)
        clock.advance(6.0)
        assert cache.fetch("k", lambda: "v2", ttl=5.0) == "v2"
        assert cache.misses == 2

    def test_invalidate(self, clock):
        cache = ObjectCache(clock)
        cache.fetch("k", lambda: 1)
        assert cache.invalidate("k")
        assert not cache.invalidate("k")

    def test_invalidate_prefix(self, clock):
        cache = ObjectCache(clock)
        cache.fetch("profile:bob", lambda: 1)
        cache.fetch("profile:alice", lambda: 2)
        cache.fetch("account:bob", lambda: 3)
        assert cache.invalidate_prefix("profile:") == 2
        assert len(cache) == 1
