"""Shared fixtures and an import-path safety net for the test suite."""

import os
import sys

import pytest

# Ensure `repro` is importable even when the package was not installed
# (e.g. running pytest straight from a fresh checkout).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.network.clock import SimulatedClock  # noqa: E402


@pytest.fixture
def clock():
    """A fresh virtual clock starting at t=0."""
    return SimulatedClock()
