"""Table 2: baseline parameter settings for the Section 5 analysis.

==============================  =========
Parameter                       Value
==============================  =========
hit ratio (h)                   0.8
fragment size (s_e)             1K bytes
number of fragments per page    4
number of pages                 10
avg size of header info (f)     500 bytes
tag size (g)                    10 bytes
cacheability factor             0.6
requests during interval (R)    1 million
==============================  =========

"Our choice of 0.8 as the baseline hit ratio is driven largely by the
numerous studies that have shown that Web requests often exhibit locality."
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..errors import ConfigurationError


@dataclass(frozen=True)
class AnalysisParams:
    """One configuration of the closed-form model (defaults = Table 2)."""

    hit_ratio: float = 0.8
    fragment_size: float = 1024.0
    fragments_per_page: int = 4
    num_pages: int = 10
    header_bytes: float = 500.0
    tag_size: float = 10.0
    cacheability: float = 0.6
    requests: int = 1_000_000
    zipf_alpha: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.hit_ratio <= 1.0:
            raise ConfigurationError("hit_ratio must be in [0, 1]")
        if not 0.0 <= self.cacheability <= 1.0:
            raise ConfigurationError("cacheability must be in [0, 1]")
        if self.fragment_size < 0 or self.header_bytes < 0 or self.tag_size < 0:
            raise ConfigurationError("sizes cannot be negative")
        if self.fragments_per_page <= 0 or self.num_pages <= 0 or self.requests <= 0:
            raise ConfigurationError("counts must be positive")
        if self.zipf_alpha < 0:
            raise ConfigurationError("zipf_alpha cannot be negative")

    def with_(self, **overrides) -> "AnalysisParams":
        """A copy with some fields replaced (sweep helper)."""
        return replace(self, **overrides)

    def as_table(self) -> Dict[str, object]:
        """Row-oriented rendering of Table 2 for the bench harness."""
        return {
            "hit ratio (h)": self.hit_ratio,
            "fragment size (s_e)": "%d bytes" % round(self.fragment_size),
            "number of fragments per page": self.fragments_per_page,
            "number of pages": self.num_pages,
            "average size of header information (f)": "%d bytes"
            % round(self.header_bytes),
            "tag size (g)": "%d bytes" % round(self.tag_size),
            "cacheability factor": self.cacheability,
            "number of requests during interval (R)": self.requests,
        }


#: The paper's Table 2 settings, importable by name.
TABLE2 = AnalysisParams()
