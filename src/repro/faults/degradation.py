"""Graceful-degradation modes and their per-request accounting.

The paper's stated fallback is BEM bypass: "if the DPC fails, pages are
still generated uncached" — availability is preserved at the cost of
origin bandwidth and server load.  This module models that fallback plus a
stale-while-revalidate grace window (serve a TTL-expired fragment for a
bounded grace period while scheduling its refresh), and keeps per-request
accounting so benches can report exactly what each degradation mode cost:
bypassed requests and their full-page bytes, stale serves and their
correctness exposure, outright failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.bem import BackEndMonitor
from ..core.cache_directory import DirectoryEntry
from ..core.fragments import FragmentID
from ..errors import ConfigurationError


@dataclass
class DegradationStats:
    """What graceful degradation cost, request by request."""

    bypassed_requests: int = 0   # served fully dynamic (DPC unreachable)
    bypass_bytes: int = 0        # full-page bytes those requests shipped
    failed_requests: int = 0     # no fallback possible; request dropped
    stale_hits: int = 0          # fragments served past TTL within grace
    stale_bytes: int = 0         # bytes of stale fragment content served
    refreshes_scheduled: int = 0  # revalidations queued by stale serves
    stale_pages: int = 0         # whole pages served from a stale copy
    browned_out_requests: int = 0  # requests absorbed during brown-out

    @property
    def fallback_requests(self) -> int:
        """Requests that needed any degradation mode at all."""
        return self.bypassed_requests + self.failed_requests

    def availability(self, total_requests: int) -> float:
        """Fraction of requests that received *some* page."""
        if total_requests <= 0:
            return 0.0
        return 1.0 - self.failed_requests / total_requests


class GracefulDegrader:
    """Fallback decision-making and accounting for one deployment.

    ``grace_s`` is the stale-while-revalidate window: a TTL-expired
    directory entry may still be served for up to ``grace_s`` seconds past
    its expiry, provided its refresh is scheduled.  ``grace_s = 0``
    disables stale serving (the strict mode the correctness invariant
    assumes).
    """

    def __init__(
        self, bem: Optional[BackEndMonitor] = None, grace_s: float = 0.0
    ) -> None:
        if grace_s < 0:
            raise ConfigurationError("grace window cannot be negative")
        self.bem = bem
        self.grace_s = grace_s
        self.stats = DegradationStats()
        self._refresh_queue: List[FragmentID] = []

    # -- BEM bypass (the paper's fallback) -----------------------------------

    def record_bypass(self, page_bytes: int) -> None:
        """Account one request served fully dynamic because the DPC is down."""
        self.stats.bypassed_requests += 1
        self.stats.bypass_bytes += page_bytes

    def record_failure(self) -> None:
        """Account one request that could not be served at all."""
        self.stats.failed_requests += 1

    def record_stale_page(self, page_bytes: int) -> None:
        """Account one whole page served from a stale copy.

        The overload path serves page-granularity stale content (from a
        :class:`repro.overload.stale.StalePageCache`) when the origin is
        browned out or a request has blown its deadline; those bytes are
        correctness exposure, same as stale fragments.
        """
        self.stats.stale_pages += 1
        self.stats.stale_bytes += page_bytes

    def record_brownout(self) -> None:
        """Account one request absorbed while the breaker held the origin."""
        self.stats.browned_out_requests += 1

    # -- stale-while-revalidate ----------------------------------------------

    def stale_lookup(
        self, fragment_id: FragmentID, now: float
    ) -> Optional[DirectoryEntry]:
        """Serve-stale probe: a fresh entry, or an expired one within grace.

        Returns ``None`` on a true miss (no entry, invalid entry, or expired
        beyond the grace window).  A stale return schedules the fragment for
        refresh exactly once per staleness episode and is accounted as a
        stale hit — the correctness cost a bench can then report.
        """
        if self.bem is None:
            raise ConfigurationError("stale_lookup needs a BEM")
        entry = self.bem.directory.peek(fragment_id)
        if entry is None or not entry.is_valid:
            return None
        if entry.fresh(now):
            return entry
        if self.grace_s <= 0 or entry.ttl is None:
            return None
        if now >= entry.created_at + entry.ttl + self.grace_s:
            return None
        self.stats.stale_hits += 1
        self.stats.stale_bytes += entry.size_bytes
        self.stats.refreshes_scheduled += 1
        self._refresh_queue.append(fragment_id)
        return entry

    def drain_refreshes(self) -> List[FragmentID]:
        """Fragments whose revalidation is due (cleared on read).

        The caller regenerates these through the normal miss path — in the
        simulation that means invalidating the entry so the next request
        re-runs the block.
        """
        due, self._refresh_queue = self._refresh_queue, []
        return due

    def revalidate_due(self) -> int:
        """Invalidate every fragment in the refresh queue; returns count.

        This is the "revalidate" half of stale-while-revalidate: after the
        stale copy bought time, the entry is dropped so the next request
        regenerates fresh content.
        """
        if self.bem is None:
            raise ConfigurationError("revalidate_due needs a BEM")
        count = 0
        for fragment_id in self.drain_refreshes():
            if self.bem.directory.invalidate(fragment_id):
                count += 1
        return count
