#!/usr/bin/env python
"""Quickstart: the DPC/BEM protocol on a three-fragment page, end to end.

Builds a tiny dynamic site, puts a Back End Monitor behind the application
server and a Dynamic Proxy Cache in front of it, then serves the same page
twice.  Watch the origin response shrink from full content (SET
instructions) to a handful of 10-byte GET tags, while the delivered page
stays byte-identical.

Run:  python examples/quickstart.py
"""

from repro.appserver import ApplicationServer, DynamicScript, HttpRequest, SiteServices
from repro.core import BackEndMonitor, DynamicProxyCache, Dependency
from repro.database import Database, schema
from repro.network import SimulatedClock


class HelloScript(DynamicScript):
    """A JSP-style script: layout markup around three tagged blocks."""

    path = "/hello.jsp"

    def run(self, ctx):
        table = ctx.services.db.table("messages")
        ctx.write("<html><body>")
        ctx.block("header", {}, lambda: "<h1>%s</h1>" % table.get("title")["text"])
        ctx.block("body", {}, lambda: "<p>%s</p>" % table.get("body")["text"])
        ctx.block("footer", {}, lambda: "<small>%s</small>" % table.get("footer")["text"])
        ctx.write("</body></html>")


def build_site():
    db = Database("quickstart")
    table = db.create_table(schema("messages", [("key", "str"), ("text", "str")]))
    table.insert({"key": "title", "text": "Dynamic Proxy Caching"})
    table.insert({"key": "body", "text": "Fragments cached at the proxy, layout computed per request." * 4})
    table.insert({"key": "footer", "text": "SIGMOD 2002 reproduction"})

    services = SiteServices(db=db)
    # The initialization-phase tagging pass: mark blocks cacheable and
    # declare what data they depend on.
    for name, key in (("header", "title"), ("body", "body"), ("footer", "footer")):
        services.tags.tag(
            name, dependencies=lambda params, key=key: (Dependency("messages", key=key),)
        )
    return services


def main():
    services = build_site()
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=64, clock=clock)
    bem.attach_database(services.db.bus)
    server = ApplicationServer(services, clock=clock, bem=bem)
    server.register(HelloScript())
    dpc = DynamicProxyCache(capacity=64)

    request = HttpRequest("/hello.jsp", session_id="demo")

    print("--- request 1 (cold cache) ---")
    response = server.handle(request)
    page = dpc.process_response(response.body)
    print("origin shipped : %5d bytes (%d SET, %d GET)"
          % (response.body_bytes, response.meta["set_count"],
             response.meta["get_count"]))
    print("page delivered : %5d bytes" % page.page_bytes)

    print("\n--- request 2 (warm cache) ---")
    response = server.handle(request)
    warm_page = dpc.process_response(response.body)
    print("origin shipped : %5d bytes (%d SET, %d GET)"
          % (response.body_bytes, response.meta["set_count"],
             response.meta["get_count"]))
    print("page delivered : %5d bytes" % warm_page.page_bytes)
    print("wire template  : %r" % response.body)
    assert warm_page.html == page.html

    print("\n--- data update: the 'title' row changes ---")
    services.db.table("messages").update(
        {"text": "Dynamic Proxy Caching, v2"}, key="title"
    )
    response = server.handle(request)
    fresh = dpc.process_response(response.body)
    print("origin shipped : %5d bytes (%d SET, %d GET)  <- only the header regenerated"
          % (response.body_bytes, response.meta["set_count"],
             response.meta["get_count"]))
    assert "v2" in fresh.html

    savings = 1 - (server.handle(request).body_bytes / page.page_bytes)
    print("\nsteady-state origin-byte savings: %.0f%%" % (savings * 100))


if __name__ == "__main__":
    main()
