"""Single-pass reuse-distance profiling: hit ratio vs. slots, no reruns.

Mattson's classic result (Mattson et al. 1970): for a stack algorithm like
LRU, one pass over the access stream yields the hit ratio of *every* cache
size at once.  An access whose **stack distance** (number of distinct
fragments touched since its previous access) is ``d`` hits in any LRU
cache of more than ``d`` slots and misses in any smaller one, so the
histogram of distances integrates into the full hit-ratio-vs-``num_slots``
curve — the counterfactual the capacity-planning question "would more DPC
slots have helped?" needs, without re-running the workload per size.

Invalidation is the wrinkle: the paper's directory *invalidates in place*
(§4.3.3 flips ``isValid`` and recycles the dpcKey; content leaves, the
recency order does not change for anyone else).  The profiler models
exactly that — an invalidated fragment keeps its stack position but is
marked stale, and its next access is a miss at **every** size.  Under this
stale-in-place model LRU retains the inclusion property (the content of a
``C``-slot cache is the valid subset of the top-``C`` stack positions for
every ``C``), so the single-pass prediction is *exact*, not an
approximation: :func:`simulate_lru` replays the same event stream through
a real fixed-size LRU and the property tests assert equality for every
small slot count.

Stack distances are counted with a Fenwick (binary indexed) tree over
access timestamps — ``O(log n)`` per access — the standard reuse-distance
technique (Almási, Caşcaval & Padua 2002).  The counting is **deferred**:
the serve-path hooks only append to an event log (one list append per
lookup, which is what keeps the insight layer under its <5% overhead
gate), and the Fenwick folding runs incrementally the first time a
reading method needs the histogram.  Total work is identical; it just
happens at diagnosis time instead of inside the request loop.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

#: Event-stream kinds recorded in the profiler's log.
EVENT_KINDS = ("access", "invalidate")


class _FenwickTree:
    """Prefix-sum counts over 1-based positions, grown by appending.

    A Fenwick cell ``tree[p]`` holds the sum of raw values over
    ``(p - lowbit(p), p]``, so a freshly appended position (raw value 0)
    cannot simply be zero-filled: its cell must be seeded with the sum of
    the lower positions its range covers, all of which already exist.
    """

    __slots__ = ("_tree", "_size")

    def __init__(self) -> None:
        self._tree: List[int] = [0]  # 1-based; slot 0 unused
        self._size = 0

    def _append(self) -> None:
        position = self._size + 1
        lowbit = position & (-position)
        self._tree.append(self.prefix(position - 1) - self.prefix(position - lowbit))
        self._size = position

    def add(self, position: int, delta: int) -> None:
        """Add ``delta`` at ``position`` (1-based), growing as needed."""
        while self._size < position:
            self._append()
        while position <= self._size:
            self._tree[position] += delta
            position += position & (-position)

    def prefix(self, position: int) -> int:
        """Sum of values at positions ``1..position``."""
        if position > self._size:
            position = self._size
        total = 0
        while position > 0:
            total += self._tree[position]
            position -= position & (-position)
        return total


class ReuseDistanceProfiler:
    """One-pass Mattson profiler over the directory's access stream.

    Feed it via :meth:`on_access` (one call per directory lookup) and
    :meth:`on_invalidate` (one call per content invalidation — TTL, data
    change, quarantine; capacity evictions are *not* events, they are what
    the counterfactual varies).  Read the result via :meth:`curve` /
    :meth:`predicted_hits`.

    Feeding is O(1) — a log append — and reading folds the un-processed
    log suffix through the Fenwick counter first, so interleaving feeds
    and reads stays correct (and each event is folded exactly once).

    With ``keep_events=True`` the replayable event stream is retained so
    :func:`simulate_lru` can re-run it for validation (the doctor's smoke
    check does exactly that at small slot counts).
    """

    def __init__(self, keep_events: bool = False) -> None:
        self._log: List[Tuple[str, str]] = []     # raw feed, folded lazily
        self._folded = 0                          # log prefix already folded
        self._clockhand = 0                       # accesses so far (1-based)
        self._last_access: Dict[str, int] = {}    # canonical -> access stamp
        self._stale: set = set()                  # invalidated since last access
        self._tree = _FenwickTree()               # marks most-recent stamps
        self._histogram: Dict[int, int] = {}
        self._cold_misses = 0
        self._stale_misses = 0
        self._events: Optional[List[Tuple[str, str]]] = (
            [] if keep_events else None
        )

    # -- feeding ------------------------------------------------------------

    def on_access(self, canonical: str) -> None:
        """One directory lookup for ``canonical`` (hit or miss alike)."""
        self._log.append(("access", canonical))

    def on_invalidate(self, canonical: str) -> None:
        """Content invalidation (TTL / data change / quarantine) in place."""
        self._log.append(("invalidate", canonical))

    # -- folding ------------------------------------------------------------

    def _fold(self) -> None:
        """Fold the pending log suffix into the stack-distance state."""
        log = self._log
        if self._folded == len(log):
            return
        last_access, stale, tree = self._last_access, self._stale, self._tree
        histogram, events = self._histogram, self._events
        clockhand = self._clockhand
        for kind, canonical in log[self._folded:]:
            if kind == "access":
                if events is not None:
                    events.append(("access", canonical))
                clockhand += 1
                stamp = last_access.get(canonical)
                if stamp is None:
                    self._cold_misses += 1
                else:
                    if canonical in stale:
                        # Stale-in-place: the content is gone at every
                        # size, but the fragment still occupied its
                        # recency position.
                        stale.discard(canonical)
                        self._stale_misses += 1
                    else:
                        # Fragments whose most-recent access is newer than
                        # ours sit above us in the stack; their count is
                        # our depth.
                        distance = len(last_access) - tree.prefix(stamp)
                        histogram[distance] = histogram.get(distance, 0) + 1
                    tree.add(stamp, -1)
                last_access[canonical] = clockhand
                tree.add(clockhand, 1)
            else:
                # Invalidations of never-accessed fragments are irrelevant
                # to the recency stack (and to the replay stream).
                if canonical in last_access:
                    if events is not None:
                        events.append(("invalidate", canonical))
                    stale.add(canonical)
        self._clockhand = clockhand
        self._folded = len(log)

    # -- reading ------------------------------------------------------------

    @property
    def histogram(self) -> Dict[int, int]:
        """Stack distance -> number of accesses observing it (finite = reuse)."""
        self._fold()
        return self._histogram

    @property
    def cold_misses(self) -> int:
        """First-ever accesses (infinite stack distance)."""
        self._fold()
        return self._cold_misses

    @property
    def stale_misses(self) -> int:
        """Reuses of invalidated-in-place fragments (miss at every size)."""
        self._fold()
        return self._stale_misses

    @property
    def events(self) -> Optional[List[Tuple[str, str]]]:
        """The replayable event stream (``None`` unless ``keep_events``)."""
        self._fold()
        return self._events

    @property
    def accesses(self) -> int:
        """Total accesses profiled."""
        self._fold()
        return self._clockhand

    @property
    def distinct_fragments(self) -> int:
        """Distinct fragments seen."""
        self._fold()
        return len(self._last_access)

    def max_useful_slots(self) -> int:
        """Smallest size at which the curve flattens (max distance + 1)."""
        if not self.histogram:
            return 1
        return max(self._histogram) + 1

    def predicted_hits(self, num_slots: int) -> int:
        """Exact hit count an LRU directory of ``num_slots`` would score."""
        return sum(
            count
            for distance, count in self.histogram.items()
            if distance < num_slots
        )

    def predicted_hit_ratio(self, num_slots: int) -> float:
        """Counterfactual hit ratio at ``num_slots`` (0.0 on no traffic)."""
        if self.accesses == 0:
            return 0.0
        return self.predicted_hits(num_slots) / self._clockhand

    def curve(self, slot_counts: Iterable[int]) -> List[Tuple[int, float]]:
        """``(num_slots, predicted hit ratio)`` points, one per size."""
        return [
            (num_slots, self.predicted_hit_ratio(num_slots))
            for num_slots in slot_counts
        ]

    def asymptotic_hit_ratio(self) -> float:
        """The ceiling: hit ratio with unbounded slots (no capacity misses).

        Cold and stale-in-place misses remain — no amount of capacity buys
        them back — which is why this is typically well below 1.0 even for
        a perfectly sized cache.
        """
        if self.accesses == 0:
            return 0.0
        return sum(self._histogram.values()) / self._clockhand

    def recommend_slots(self, fraction: float = 0.95) -> int:
        """Smallest slot count achieving ``fraction`` of the asymptote.

        The capacity-planning readout: beyond this size the curve has
        flattened and extra slots buy almost nothing.
        """
        target = self.asymptotic_hit_ratio() * fraction
        best = self.max_useful_slots()
        # Walk sizes in ascending order of observed distance boundaries;
        # the curve only changes at distance+1 steps.
        boundaries = sorted(distance + 1 for distance in self._histogram)
        for num_slots in boundaries:
            if self.predicted_hit_ratio(num_slots) >= target:
                return num_slots
        return best

    def metric_rows(self) -> List[Tuple[str, object]]:
        """Registry rows under ``insight.mattson.*``."""
        return [
            ("insight.mattson.accesses", self.accesses),
            ("insight.mattson.distinct_fragments", self.distinct_fragments),
            ("insight.mattson.cold_misses", self.cold_misses),
            ("insight.mattson.stale_misses", self.stale_misses),
        ]


def simulate_lru(
    events: Iterable[Tuple[str, str]], num_slots: int
) -> Tuple[int, int]:
    """Brute-force oracle: replay events through a real ``num_slots`` LRU.

    Returns ``(hits, accesses)``.  The cache honors the directory's
    stale-in-place semantics: invalidation marks a resident fragment stale
    without surrendering its slot or recency, exactly like §4.3.3 flips
    ``isValid`` while the slot bytes linger.  Used by the property tests
    and ``repro doctor --smoke`` to confirm the profiler's single-pass
    prediction is exact.
    """
    if num_slots <= 0:
        raise ValueError("num_slots must be positive")
    cache: "OrderedDict[str, bool]" = OrderedDict()  # canonical -> is_valid
    hits = accesses = 0
    for kind, canonical in events:
        if kind == "access":
            accesses += 1
            resident = canonical in cache
            if resident and cache[canonical]:
                hits += 1
                cache.move_to_end(canonical)
                continue
            # Miss: stale-resident fragments refresh in place; new ones
            # take a slot, evicting the LRU victim when full.
            cache[canonical] = True
            cache.move_to_end(canonical)
            if not resident and len(cache) > num_slots:
                cache.popitem(last=False)
        elif kind == "invalidate":
            if canonical in cache:
                cache[canonical] = False
        else:
            raise ValueError("unknown event kind %r" % (kind,))
    return hits, accesses
