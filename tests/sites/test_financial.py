"""Tests for the financial portal site."""

import pytest

from repro.appserver import HttpRequest
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites import financial


def dpc_stack():
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=512, clock=clock)
    server = financial.build_server(clock=clock, bem=bem, cost_model=FREE)
    bem.attach_database(server.services.db.bus)
    dpc = DynamicProxyCache(capacity=512)
    return server, bem, dpc, clock


class TestQuotePage:
    def test_renders_three_content_classes(self):
        server = financial.build_server(cost_model=FREE)
        body = server.handle(HttpRequest("/quote.jsp", {"symbol": "ACME"})).body
        assert 'class="quote"' in body
        assert 'class="headlines"' in body
        assert 'class="history"' in body

    def test_quote_ttl_expires_but_history_survives(self):
        server, bem, dpc, clock = dpc_stack()
        request = HttpRequest("/quote.jsp", {"symbol": "ACME"}, session_id="s")
        dpc.process_response(server.handle(request).body)
        clock.advance(financial.QUOTE_TTL_S + 1.0)
        warm = server.handle(request)
        # Exactly the quote fragment regenerated; headlines/history cached.
        assert warm.meta["misses"] == 1
        assert warm.meta["hits"] >= 2

    def test_market_tick_invalidates_one_symbol(self):
        server, bem, dpc, clock = dpc_stack()
        acme = HttpRequest("/quote.jsp", {"symbol": "ACME"}, session_id="s")
        globex = HttpRequest("/quote.jsp", {"symbol": "GLOBEX"}, session_id="s")
        dpc.process_response(server.handle(acme).body)
        dpc.process_response(server.handle(globex).body)

        financial.tick_quote(server.services, "ACME", 123.45, clock.now())

        warm_globex = server.handle(globex)
        assert warm_globex.meta["misses"] == 0
        warm_acme = server.handle(acme)
        assert warm_acme.meta["misses"] == 1
        page = dpc.process_response(warm_acme.body)
        assert "123.45" in page.html

    def test_assembly_matches_oracle(self):
        server, bem, dpc, clock = dpc_stack()
        request = HttpRequest("/quote.jsp", {"symbol": "STARK"},
                              user_id="trader000", session_id="t0")
        for _ in range(3):
            oracle = server.render_reference_page(request)
            page = dpc.process_response(server.handle(request).body)
            assert page.html == oracle


class TestPortfolioPage:
    def test_personalized_but_sharing_quotes(self):
        """Two traders watching overlapping symbols share quote fragments."""
        server, bem, dpc, clock = dpc_stack()
        accounts = server.services.db.table(financial.ACCOUNTS_TABLE)
        accounts.update({"watchlist": "ACME,GLOBEX"}, key="trader000")
        accounts.update({"watchlist": "ACME,STARK"}, key="trader001")

        r0 = HttpRequest("/portfolio.jsp", user_id="trader000", session_id="t0")
        r1 = HttpRequest("/portfolio.jsp", user_id="trader001", session_id="t1")
        dpc.process_response(server.handle(r0).body)
        response = server.handle(r1)
        # trader001 hits: ACME quote + market headlines (shared).
        assert response.meta["hits"] >= 2
        page = dpc.process_response(response.body)
        assert page.html == server.render_reference_page(r1)

    def test_anonymous_portfolio_is_sparse(self):
        server = financial.build_server(cost_model=FREE)
        body = server.handle(HttpRequest("/portfolio.jsp", session_id="x")).body
        assert 'class="account"' not in body
        assert 'class="watchlist"' not in body.replace("headlines", "")

    def test_account_update_invalidates_summary(self):
        server, bem, dpc, clock = dpc_stack()
        request = HttpRequest("/portfolio.jsp", user_id="trader002",
                              session_id="t2")
        dpc.process_response(server.handle(request).body)
        bem.objects.clear()  # the memoized account object would mask the change
        server.services.db.table(financial.ACCOUNTS_TABLE).update(
            {"balance": 42.0}, key="trader002"
        )
        response = server.handle(request)
        assert response.meta["misses"] >= 1
        page = dpc.process_response(response.body)
        assert "Balance: $42.00" in page.html


class TestSeeding:
    def test_symbols_seeded(self):
        services = financial.build_services()
        for symbol in financial.DEFAULT_SYMBOLS:
            assert services.db.table(financial.QUOTES_TABLE).get(symbol)
            assert services.db.table(financial.HISTORY_TABLE).get(symbol)

    def test_ttl_classes_tagged(self):
        services = financial.build_services()
        assert services.tags.lookup("price_quote").ttl == financial.QUOTE_TTL_S
        assert services.tags.lookup("headlines").ttl == financial.HEADLINES_TTL_S
        assert services.tags.lookup("historical").ttl == financial.HISTORY_TTL_S

    def test_tick_unknown_symbol_is_noop_update(self):
        services = financial.build_services()
        financial.tick_quote(services, "NOPE", 1.0, 0.0)  # 0 rows updated
        assert services.db.table(financial.QUOTES_TABLE).get("NOPE") is None
