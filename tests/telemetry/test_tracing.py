"""Tracer lifecycle, nesting, propagation, and tree invariants."""

import pytest

from repro.appserver import HttpRequest
from repro.errors import ConfigurationError
from repro.network.clock import SimulatedClock
from repro.telemetry.tracing import (
    NULL_SCOPE,
    NULL_SPAN,
    NULL_TRACER,
    Span,
    TraceContext,
    Tracer,
    assert_gap_free,
    assert_well_formed,
)


@pytest.fixture
def tracer(clock):
    return Tracer(clock, enabled=True)


class TestDisabledTracer:
    def test_span_returns_the_shared_null_scope(self):
        tracer = Tracer()
        assert tracer.span("request") is NULL_SCOPE
        assert tracer.span("bem.process", path="/x") is NULL_SCOPE

    def test_null_scope_yields_the_shared_null_span(self):
        with Tracer().span("request") as span:
            assert span is NULL_SPAN
            assert span.annotate(mode="dpc") is NULL_SPAN
            assert span.set_status("dropped") is NULL_SPAN
            assert span.meta == {}

    def test_nothing_is_recorded(self, clock):
        tracer = Tracer(clock)
        with tracer.span("request"):
            clock.advance(1.0)
        assert tracer.spans_opened == 0
        assert tracer.traces_completed == 0
        assert tracer.last_root is None

    def test_propagate_is_identity(self):
        request = HttpRequest("/page.jsp")
        assert Tracer().propagate(request) is request
        assert request.trace is None

    def test_enabled_requires_a_clock(self):
        with pytest.raises(ConfigurationError):
            Tracer(clock=None, enabled=True)
        with pytest.raises(ConfigurationError):
            Tracer().enable()

    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.span("anything") is NULL_SCOPE


class TestSpanTree:
    def test_nested_spans_measure_virtual_time(self, clock, tracer):
        with tracer.span("request") as root:
            with tracer.span("bem.process") as inner:
                clock.advance(0.5)
            with tracer.span("dpc.assemble"):
                clock.advance(0.25)
        assert root.duration == pytest.approx(0.75)
        assert inner.duration == pytest.approx(0.5)
        assert [child.name for child in root.children] == [
            "bem.process", "dpc.assemble",
        ]
        assert root.closed and inner.closed
        assert_gap_free(root)

    def test_meta_kwargs_land_on_the_span(self, tracer):
        with tracer.span("channel.transfer", channel="origin", kind="request") as span:
            pass
        assert span.meta == {"channel": "origin", "kind": "request"}
        span.annotate(bytes=128)
        assert span.meta["bytes"] == 128

    def test_children_share_the_trace_id(self, clock, tracer):
        with tracer.span("request") as root:
            with tracer.span("bem.process") as child:
                pass
        assert child.trace_id == root.trace_id
        with tracer.span("request") as second:
            pass
        assert second.trace_id != root.trace_id

    def test_exception_sets_status_and_closes(self, clock, tracer):
        with pytest.raises(ValueError):
            with tracer.span("request") as root:
                with tracer.span("script.exec") as inner:
                    clock.advance(0.1)
                    raise ValueError("boom")
        assert inner.status == "ValueError"
        assert root.status == "ValueError"
        assert root.closed and inner.closed
        assert tracer.traces_completed == 1

    def test_explicit_status_survives_an_exception(self, clock, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("channel.transfer") as span:
                span.set_status("dropped")
                raise RuntimeError("link down")
        assert span.status == "dropped"

    def test_walk_find_count(self, clock, tracer):
        with tracer.span("request") as root:
            with tracer.span("bem.process"):
                with tracer.span("script.exec"):
                    clock.advance(0.1)
            with tracer.span("dpc.assemble"):
                pass
        assert [s.name for s in root.walk()] == [
            "request", "bem.process", "script.exec", "dpc.assemble",
        ]
        assert root.find("script.exec").duration == pytest.approx(0.1)
        assert root.find("nope") is None
        assert root.count() == 4
        assert root.count("dpc.assemble") == 1

    def test_completed_roots_are_retained_bounded(self, clock):
        tracer = Tracer(clock, enabled=True, max_traces=2)
        for i in range(5):
            with tracer.span("request", index=i):
                clock.advance(0.01)
        assert tracer.traces_completed == 5
        assert len(tracer.traces) == 2
        assert [t.meta["index"] for t in tracer.traces] == [3, 4]
        assert tracer.last_root.meta["index"] == 4

    def test_annotate_last(self, clock, tracer):
        with tracer.span("request"):
            clock.advance(0.2)
        tracer.annotate_last(elapsed_s=0.2)
        assert tracer.last_root.meta["elapsed_s"] == 0.2

    def test_disable_abandons_open_spans(self, clock, tracer):
        scope = tracer.span("request")
        with scope:
            tracer.disable()
        assert tracer.traces_completed == 0
        assert tracer.last_root is None


class TestRequestSpanAndPropagation:
    def test_request_span_roots_with_url(self, clock, tracer):
        request = HttpRequest("/page.jsp", {"pageID": "1"})
        with tracer.request_span(request, mode="dpc") as root:
            clock.advance(0.1)
        assert root.name == "request"
        assert root.meta["url"] == request.url
        assert root.meta["mode"] == "dpc"

    def test_request_span_never_nests(self, clock, tracer):
        request = HttpRequest("/page.jsp")
        with tracer.request_span(request) as outer:
            inner_scope = tracer.request_span(request, harness="overload")
            assert inner_scope is NULL_SCOPE
        assert outer.count("request") == 1

    def test_propagate_stamps_context_once(self, clock, tracer):
        request = HttpRequest("/page.jsp")
        with tracer.span("request"):
            stamped = tracer.propagate(request)
            assert isinstance(stamped.trace, TraceContext)
            assert stamped.trace.span is tracer.current
            again = tracer.propagate(stamped)
            assert again.trace is stamped.trace

    def test_current_context_outside_a_trace(self, tracer):
        assert tracer.current is None
        assert tracer.current_context() is None

    def test_metric_rows(self, clock, tracer):
        with tracer.span("request"):
            with tracer.span("bem.process"):
                pass
        assert tracer.metric_rows() == [
            ("trace.spans_opened", 2),
            ("trace.traces_completed", 1),
        ]


class TestTreeInvariants:
    def build(self, spans):
        """Build a hand-rolled root with children [(start, end), ...]."""
        root = Span("request", "t0", spans[0][0])
        root.end = spans[-1][1]
        for start, end in spans:
            child = Span("stage", "t0", start)
            child.end = end
            root.children.append(child)
        return root

    def test_gap_free_accepts_exact_tiling(self):
        root = self.build([(0.0, 0.4), (0.4, 1.0)])
        assert_gap_free(root)

    def test_gap_free_rejects_a_gap(self):
        root = self.build([(0.0, 0.4), (0.6, 1.0)])
        assert_well_formed(root)  # ordered and nested, but gappy
        with pytest.raises(AssertionError):
            assert_gap_free(root)

    def test_well_formed_rejects_open_spans(self):
        root = Span("request", "t0", 0.0)
        with pytest.raises(AssertionError):
            assert_well_formed(root)

    def test_well_formed_rejects_overlapping_siblings(self):
        root = self.build([(0.0, 0.6), (0.5, 1.0)])
        with pytest.raises(AssertionError):
            assert_well_formed(root)

    def test_well_formed_rejects_child_outliving_parent(self):
        root = self.build([(0.0, 1.5)])
        root.end = 1.0
        with pytest.raises(AssertionError):
            assert_well_formed(root)
