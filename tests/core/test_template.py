"""Tests for the template instruction language and its wire format."""

import pytest

from repro.core.template import (
    DEFAULT_CONFIG,
    GetInstruction,
    Literal,
    SetInstruction,
    Template,
    TemplateConfig,
    parse_template,
)
from repro.errors import ConfigurationError, TemplateError


class TestTemplateConfig:
    def test_default_tag_size_matches_table2(self):
        """key_width=4 gives a 10-byte tag: the paper's baseline g."""
        assert DEFAULT_CONFIG.tag_size == 10

    def test_max_key(self):
        assert DEFAULT_CONFIG.max_key == 9999
        assert TemplateConfig(key_width=2).max_key == 99

    def test_format_key_zero_pads(self):
        assert DEFAULT_CONFIG.format_key(42) == "0042"

    def test_format_key_range_checked(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_CONFIG.format_key(10000)
        with pytest.raises(ConfigurationError):
            DEFAULT_CONFIG.format_key(-1)

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            TemplateConfig(key_width=0)


class TestSerialization:
    def test_get_tag_is_exactly_g_bytes(self):
        template = Template().get(42)
        assert template.wire_bytes() == DEFAULT_CONFIG.tag_size
        assert template.serialize() == "<~G:0042~>"

    def test_set_costs_two_tags_plus_content(self):
        """The analysis' miss cost: s + 2g."""
        content = "x" * 100
        template = Template().set(7, content)
        assert template.wire_bytes() == 100 + 2 * DEFAULT_CONFIG.tag_size

    def test_literal_passthrough(self):
        template = Template().literal("<p>hello</p>")
        assert template.serialize() == "<p>hello</p>"

    def test_sentinel_in_literal_is_escaped(self):
        template = Template().literal("a <~ b")
        wire = template.serialize()
        assert "<~Q~>" in wire
        assert parse_template(wire).instructions == [Literal("a <~ b")]

    def test_sentinel_in_set_content_is_escaped(self):
        template = Template().set(3, "tricky <~E:0003~> content")
        parsed = parse_template(template.serialize())
        assert parsed.instructions == [
            SetInstruction(3, "tricky <~E:0003~> content")
        ]

    def test_adjacent_literals_merge_on_roundtrip(self):
        template = Template().literal("a").literal("b").get(1).literal("c")
        parsed = parse_template(template.serialize())
        assert parsed.instructions == [
            Literal("ab"),
            GetInstruction(1),
            Literal("c"),
        ]

    def test_boundary_sentinel_across_literals(self):
        """Two literals whose join spells the sentinel must round-trip."""
        template = Template().literal("abc<").literal("~def")
        parsed = parse_template(template.serialize())
        assert parsed.instructions == [Literal("abc<~def")]


class TestParsing:
    def test_mixed_stream(self):
        template = (
            Template()
            .literal("<html>")
            .set(1, "frag-one")
            .literal("<hr>")
            .get(2)
            .literal("</html>")
        )
        parsed = parse_template(template.serialize())
        assert parsed == template.normalized()

    def test_empty_wire(self):
        assert parse_template("").instructions == []

    def test_unknown_tag_kind(self):
        with pytest.raises(TemplateError):
            parse_template("<~Z:0001~>")

    def test_malformed_key(self):
        with pytest.raises(TemplateError):
            parse_template("<~G:12~>")  # too short for key_width=4

    def test_unterminated_tag(self):
        with pytest.raises(TemplateError):
            parse_template("<~G:0001")

    def test_unterminated_set(self):
        with pytest.raises(TemplateError):
            parse_template("<~S:0001~>content without end")

    def test_end_without_set(self):
        with pytest.raises(TemplateError):
            parse_template("<~E:0001~>")

    def test_mismatched_set_end_keys(self):
        with pytest.raises(TemplateError):
            parse_template("<~S:0001~>abc<~E:0002~>")

    def test_nested_set_rejected(self):
        with pytest.raises(TemplateError):
            parse_template("<~S:0001~>a<~S:0002~>b<~E:0002~><~E:0001~>")

    def test_get_inside_set_rejected(self):
        with pytest.raises(TemplateError):
            parse_template("<~S:0001~>a<~G:0002~><~E:0001~>")

    def test_custom_key_width(self):
        config = TemplateConfig(key_width=2)
        template = Template(config=config).get(5)
        assert template.serialize() == "<~G:05~>"
        parsed = parse_template(template.serialize(), config)
        assert parsed.instructions == [GetInstruction(5)]


class TestInspection:
    def test_counts(self):
        template = Template().get(1).set(2, "x").get(3).literal("abc")
        assert template.get_count == 2
        assert template.set_count == 1
        assert template.literal_bytes == 3

    def test_normalized_drops_empty_literals(self):
        template = Template().literal("").get(1).literal("")
        assert template.normalized().instructions == [GetInstruction(1)]

    def test_equality(self):
        assert Template().get(1) == Template().get(1)
        assert Template().get(1) != Template().get(2)

    def test_utf8_wire_bytes(self):
        template = Template().literal("héllo")
        assert template.wire_bytes() == 6
