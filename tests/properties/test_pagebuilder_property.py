"""Property: for any page program, DPC assembly equals direct composition.

A "page program" is an arbitrary sequence of literal writes and block
emissions.  Rendering it plain (no cache) and rendering it through
BEM-template-then-DPC-assembly must produce identical bytes, on cold and
warm caches alike, for any interleaving — the PageBuilder-level statement
of the paper's correctness claim.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.core.tagging import PageBuilder, TagRegistry

BLOCK_NAMES = ["alpha", "beta", "gamma", "delta"]

content_text = st.text(
    alphabet=string.ascii_letters + string.digits + "<>~: \n", max_size=40
)

page_programs = st.lists(
    st.one_of(
        st.tuples(st.just("literal"), content_text, st.just(0)),
        st.tuples(
            st.just("block"),
            st.sampled_from(BLOCK_NAMES),
            st.integers(0, 3),  # parameter variant
        ),
    ),
    max_size=15,
)


def block_content(name: str, variant: int) -> str:
    return "[%s:%d]" % (name, variant)


def make_registry() -> TagRegistry:
    registry = TagRegistry()
    for name in BLOCK_NAMES[:-1]:
        registry.tag(name)
    # 'delta' stays untagged: the non-cacheable path must compose too.
    return registry


def render(program, registry, bem, dpc):
    builder = PageBuilder(registry, bem=bem)
    for kind, a, b in program:
        if kind == "literal":
            builder.literal(a)
        else:
            builder.block(
                a, {"v": b}, lambda a=a, b=b: block_content(a, b)
            )
    body = builder.response_body()
    if bem is None:
        return body
    return dpc.process_response(body).html


def render_plain(program):
    parts = []
    for kind, a, b in program:
        parts.append(a if kind == "literal" else block_content(a, b))
    return "".join(parts)


@given(page_programs)
@settings(max_examples=200)
def test_cold_assembly_equals_plain(program):
    registry = make_registry()
    bem = BackEndMonitor(capacity=64)
    dpc = DynamicProxyCache(capacity=64)
    assert render(program, registry, bem, dpc) == render_plain(program)


@given(page_programs, page_programs)
@settings(max_examples=150)
def test_warm_assembly_equals_plain(first, second):
    """The second program reuses whatever the first cached."""
    registry = make_registry()
    bem = BackEndMonitor(capacity=64)
    dpc = DynamicProxyCache(capacity=64)
    render(first, registry, bem, dpc)
    assert render(second, registry, bem, dpc) == render_plain(second)


@given(page_programs)
def test_no_cache_builder_matches_plain(program):
    registry = make_registry()
    builder = PageBuilder(registry, bem=None)
    for kind, a, b in program:
        if kind == "literal":
            builder.literal(a)
        else:
            builder.block(a, {"v": b}, lambda a=a, b=b: block_content(a, b))
    assert builder.full_page() == render_plain(program)
