"""End-to-end fast-lane vs reference-lane throughput on the Figure 4 testbed.

This is the benchmark behind ``BENCH_HOTPATH.json``: the full serve path —
firewall scan, origin link, BEM tagging, DPC scan-and-assemble — run at warm
cache under the fast lanes and again under the reference lanes
(:mod:`repro.core.fastpath`), over the identical seeded workload.

Measurement method (same scheme as the telemetry-overhead smoke in
``benchmarks/bench_micro.py``): wall time on a shared box is noisy, so the
two lanes run as back-to-back *pairs* with the order alternating between
pairs, GC disabled, and the gated number is the **lower quartile** of the
per-pair speedup ratios.  A real regression drags every pair down and still
trips the gate; a co-tenant burst inflates only some pairs and cannot
manufacture a pass or a failure.

Every run also cross-checks the two lanes' byte accounting — Sniffer payload
and wire totals, scanned bytes (Result 1), firewall bytes, hit ratio — and
refuses to report a speedup unless they are identical.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, List, Tuple

from ..core import fastpath
from ..harness.testbed import TestbedConfig, TestbedResult, run_testbed
from ..sites.synthetic import SyntheticParams

#: The workload: Figure 4 topology at paper-scale pages (16 fragments of
#: 4 KB — the tens-of-kilobytes regime the paper's site survey reports) and
#: a warm cache (target hit ratio 0.9).
DEFAULT_WORKLOAD: Dict[str, object] = {
    "num_pages": 20,
    "fragments_per_page": 16,
    "fragment_size": 4096,
    "cacheability": 0.8,
}

#: Result fields that must be bit-identical between the two lanes.
ACCOUNTING_FIELDS = (
    "response_payload_bytes",
    "response_wire_bytes",
    "request_payload_bytes",
    "request_wire_bytes",
    "dpc_scanned_bytes",
    "firewall_bytes",
    "measured_hit_ratio",
    "fragments_invalidated",
)

#: Reduced settings for the CI smoke gate (see ``bench_hotpath.py --smoke``).
SMOKE_SETTINGS: Dict[str, int] = {"requests": 120, "pairs": 5, "warmup": 40}


def _timed_run(
    fast: bool, requests: int, warmup: int, seed: int
) -> Tuple[float, TestbedResult]:
    """One seeded testbed run under the chosen lane; returns (wall s, result)."""
    config = TestbedConfig(
        mode="dpc",
        synthetic=SyntheticParams(**DEFAULT_WORKLOAD),
        target_hit_ratio=0.9,
        requests=requests,
        warmup_requests=warmup,
        seed=seed,
    )
    lane = fastpath.fast_lanes() if fast else fastpath.reference_lanes()
    with lane:
        start = time.perf_counter()
        result = run_testbed(config)
        wall = time.perf_counter() - start
    return wall, result


def _check_identical(fast: TestbedResult, reference: TestbedResult) -> Dict[str, object]:
    """Cross-check the two lanes' accounting; raises on any drift."""
    accounting: Dict[str, object] = {}
    for field in ACCOUNTING_FIELDS:
        fast_value = getattr(fast, field)
        reference_value = getattr(reference, field)
        if fast_value != reference_value:
            raise AssertionError(
                "fast/reference lanes disagree on %s: %r != %r"
                % (field, fast_value, reference_value)
            )
        accounting[field] = fast_value
    return accounting


def run_hotpath(
    requests: int = 300, pairs: int = 7, warmup: int = 50, seed: int = 7
) -> Dict[str, object]:
    """Measure the fast-lane speedup; returns a JSON-serializable dict.

    ``pairs`` back-to-back (reference, fast) runs are timed with the order
    alternating; the headline ``speedup.lower_quartile`` is the lower
    quartile of the per-pair wall-time ratios and ``throughput_rps`` is the
    median fast-lane requests/second.
    """
    ratios: List[float] = []
    fast_walls: List[float] = []
    reference_walls: List[float] = []
    accounting: Dict[str, object] = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        _timed_run(True, requests, warmup, seed)  # warm allocator/caches
        for index in range(pairs):
            order = (False, True) if index % 2 == 0 else (True, False)
            walls: Dict[bool, float] = {}
            results: Dict[bool, TestbedResult] = {}
            for fast in order:
                gc.collect()
                walls[fast], results[fast] = _timed_run(
                    fast, requests, warmup, seed
                )
            accounting = _check_identical(results[True], results[False])
            ratios.append(walls[False] / walls[True])
            fast_walls.append(walls[True])
            reference_walls.append(walls[False])
    finally:
        if gc_was_enabled:
            gc.enable()

    ratios.sort()
    fast_walls.sort()
    reference_walls.sort()
    fast_median = fast_walls[len(fast_walls) // 2]
    reference_median = reference_walls[len(reference_walls) // 2]
    return {
        "benchmark": "hotpath",
        "workload": dict(DEFAULT_WORKLOAD),
        "requests": requests,
        "warmup": warmup,
        "pairs": pairs,
        "seed": seed,
        "speedup": {
            "lower_quartile": round(ratios[len(ratios) // 4], 4),
            "median": round(ratios[len(ratios) // 2], 4),
        },
        "wall_s": {
            "fast_median": round(fast_median, 6),
            "reference_median": round(reference_median, 6),
        },
        "throughput_rps": {
            "fast": round(requests / fast_median, 2),
            "reference": round(requests / reference_median, 2),
        },
        "identical_accounting": True,
        "accounting": accounting,
    }
