"""Tests for the cart flow: session state interleaved with cached content."""

import pytest

from repro.appserver import HttpRequest
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites import books


@pytest.fixture
def stack():
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=512, clock=clock)
    server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
    bem.attach_database(server.services.db.bus)
    dpc = DynamicProxyCache(capacity=512)
    return server, bem, dpc


def cart_request(action="view", product="", session="shopper"):
    params = {"action": action}
    if product:
        params["productID"] = product
    return HttpRequest("/cart.jsp", params, session_id=session)


def serve(server, dpc, request):
    return dpc.process_response(server.handle(request).body).html


class TestCartFlow:
    def test_add_and_view(self, stack):
        server, bem, dpc = stack
        serve(server, dpc, cart_request("add", "FIC-000"))
        html = serve(server, dpc, cart_request())
        assert "Cart: 1 items" in html
        assert 'class="cart-contents"' in html

    def test_totals_accumulate(self, stack):
        server, bem, dpc = stack
        serve(server, dpc, cart_request("add", "FIC-000"))
        serve(server, dpc, cart_request("add", "FIC-001"))
        html = serve(server, dpc, cart_request())
        assert "Cart: 2 items" in html
        p = server.services.db.table(books.PRODUCTS_TABLE)
        total = p.get("FIC-000")["price"] + p.get("FIC-001")["price"]
        assert "$%.2f" % total in html

    def test_remove_and_clear(self, stack):
        server, bem, dpc = stack
        serve(server, dpc, cart_request("add", "FIC-000"))
        serve(server, dpc, cart_request("remove", "FIC-000"))
        assert "Cart: 0 items" in serve(server, dpc, cart_request())
        serve(server, dpc, cart_request("add", "FIC-001"))
        serve(server, dpc, cart_request("clear"))
        assert "Cart: 0 items" in serve(server, dpc, cart_request())

    def test_unknown_product_ignored(self, stack):
        server, bem, dpc = stack
        serve(server, dpc, cart_request("add", "NOPE-999"))
        assert "Cart: 0 items" in serve(server, dpc, cart_request())

    def test_sessions_are_isolated(self, stack):
        server, bem, dpc = stack
        serve(server, dpc, cart_request("add", "FIC-000", session="alice"))
        html_bob = serve(server, dpc, cart_request(session="bob"))
        assert "Cart: 0 items" in html_bob

    def test_cart_page_reuses_navbar_fragment(self, stack):
        server, bem, dpc = stack
        # Warm the navbar via the catalog page.
        serve(server, dpc, HttpRequest("/catalog.jsp",
                                       {"categoryID": "Fiction"},
                                       session_id="shopper"))
        hits_before = bem.stats.fragment_hits
        serve(server, dpc, cart_request())
        assert bem.stats.fragment_hits > hits_before  # navbar hit

    def test_cart_pages_never_cached_wrongly(self, stack):
        """After mutations, the (idempotent) view page must match the
        oracle — per-session content may never leak between requests.
        The oracle can only be taken on idempotent requests: replaying an
        'add' against the same session would apply it twice."""
        server, bem, dpc = stack
        serve(server, dpc, cart_request("add", "FIC-000"))
        serve(server, dpc, cart_request("add", "SCI-001"))
        view = cart_request()
        html = serve(server, dpc, view)
        assert html == server.render_reference_page(view)

    def test_cart_status_visible_on_catalog_pages(self, stack):
        server, bem, dpc = stack
        serve(server, dpc, cart_request("add", "FIC-000"))
        html = serve(
            server, dpc,
            HttpRequest("/catalog.jsp", {"categoryID": "Fiction"},
                        session_id="shopper"),
        )
        assert "Cart: 1 items" in html
