"""§7's promised payoff, measured: the DPC at the network edge.

"The next step, moving the proxy out to the edge of the network in forward
proxy mode would provide bandwidth savings beyond the site infrastructure
... end users would also see substantial response time improvements, since
content would be delivered from points close to them."  (§1/§7)

This module runs one synthetic workload through three deployments:

* ``origin_only`` — no caching; full pages cross the WAN.
* ``reverse_proxy`` — the paper's §6 configuration: DPC just outside the
  site; templates cross only the site LAN, but assembled pages still
  traverse the whole WAN to the user.
* ``forward_proxy`` — the §7 configuration: DPC at the edge, next to the
  user; only the tiny templates cross the WAN.

Reported per deployment: mean response time and WAN bytes.  The expected
ordering — forward < reverse < none on both axes — is the quantitative
version of the paper's motivation for taking dynamic content to the edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.bem import BackEndMonitor
from ..core.dpc import DynamicProxyCache
from ..errors import ConfigurationError
from ..network import (
    Channel,
    LinkParameters,
    ProtocolOverheadModel,
    SimulatedClock,
    request_message,
    response_message,
)
from ..network.latency import GenerationCostModel
from ..sites import synthetic
from ..sites.synthetic import SyntheticParams
from ..workload import DeterministicProcess, WorkloadGenerator, synthetic_pages

DEPLOYMENTS = ("origin_only", "reverse_proxy", "forward_proxy")

#: A cross-Internet path, 2002-style: 40 ms one-way propagation and the
#: ~2 Mbit/s a single short-lived TCP connection actually achieved across
#: the backbone (slow start over a 80 ms RTT never opens the window far).
WAN = LinkParameters(latency_s=0.040, bandwidth_bytes_per_s=250_000.0)
#: The user's access hop to a nearby edge POP: 5 ms, fast.
ACCESS = LinkParameters(latency_s=0.005, bandwidth_bytes_per_s=12_500_000.0)
#: The site-internal LAN between proxy tier and web tier.
LAN = LinkParameters(latency_s=0.0005, bandwidth_bytes_per_s=12_500_000.0)


@dataclass
class EdgeExperimentConfig:
    deployment: str = "forward_proxy"
    #: Pages sized like the paper's "10-20 objects" observation: a dozen
    #: 4 KB fragments, all cacheable -- the regime where shipping the page
    #: across the WAN is the bottleneck.
    synthetic: SyntheticParams = field(
        default_factory=lambda: SyntheticParams(
            fragments_per_page=12, fragment_size=4096, cacheability=1.0
        )
    )
    requests: int = 400
    warmup_requests: int = 100
    seed: int = 42
    wan: LinkParameters = field(default_factory=lambda: WAN)
    access: LinkParameters = field(default_factory=lambda: ACCESS)
    lan: LinkParameters = field(default_factory=lambda: LAN)

    def __post_init__(self) -> None:
        if self.deployment not in DEPLOYMENTS:
            raise ConfigurationError(
                "deployment must be one of %s" % (DEPLOYMENTS,)
            )


@dataclass
class EdgeExperimentResult:
    deployment: str
    mean_response_time: float
    wan_payload_bytes: int
    wan_wire_bytes: int
    measured_hit_ratio: float


class _Deployment:
    """One deployment's topology and per-request pipeline."""

    def __init__(self, config: EdgeExperimentConfig) -> None:
        self.config = config
        self.clock = SimulatedClock()
        self.services = synthetic.build_services(config.synthetic)
        self.cached = config.deployment != "origin_only"
        self.bem = (
            BackEndMonitor(capacity=4096, clock=self.clock)
            if self.cached
            else None
        )
        self.server = synthetic.build_server(
            params=config.synthetic,
            services=self.services,
            clock=self.clock,
            bem=self.bem,
            cost_model=GenerationCostModel(),
        )
        if self.bem is not None:
            self.bem.attach_database(self.services.db.bus)
        self.dpc = DynamicProxyCache(capacity=4096) if self.cached else None
        overhead = ProtocolOverheadModel()

        # The WAN is always the measured long-haul segment.
        self.wan = Channel("wan", "user-side", "site-side",
                           link=config.wan, overhead=overhead,
                           clock=self.clock)
        self.wan_sniffer = self.wan.attach_sniffer()
        # The short segment differs per deployment.
        if config.deployment == "forward_proxy":
            short_link = config.access   # user <-> edge POP
        else:
            short_link = config.lan      # proxy tier <-> web tier
        self.short = Channel("short", "a", "b", link=short_link,
                             overhead=overhead, clock=self.clock)

    def serve(self, request) -> None:
        deployment = self.config.deployment
        req = request.payload_bytes
        if deployment == "origin_only":
            # user --WAN--> origin; page --WAN--> user.
            self.wan.send(request_message(req, "user-side", "site-side"))
            response = self.server.handle(request)
            self.wan.send(
                response_message(response.payload_bytes, "site-side",
                                 "user-side")
            )
        elif deployment == "reverse_proxy":
            # user --WAN--> proxy --LAN--> origin; template --LAN--> proxy;
            # assembled page --WAN--> user.
            self.wan.send(request_message(req, "user-side", "site-side"))
            self.short.send(request_message(req, "a", "b"))
            response = self.server.handle(request)
            self.short.send(response_message(response.payload_bytes, "b", "a"))
            page = self.dpc.process_response(response.body)
            self.wan.send(
                response_message(
                    page.page_bytes + response.header_bytes,
                    "site-side",
                    "user-side",
                )
            )
        else:
            # user --access--> edge --WAN--> origin; template --WAN--> edge;
            # assembled page --access--> user.
            self.short.send(request_message(req, "a", "b"))
            self.wan.send(request_message(req, "user-side", "site-side"))
            response = self.server.handle(request)
            self.wan.send(
                response_message(response.payload_bytes, "site-side",
                                 "user-side")
            )
            page = self.dpc.process_response(response.body)
            self.short.send(
                response_message(
                    page.page_bytes + response.header_bytes, "b", "a"
                )
            )


def run_edge_experiment(config: EdgeExperimentConfig) -> EdgeExperimentResult:
    """Run one deployment's workload; returns its measurements."""
    deployment = _Deployment(config)
    workload = WorkloadGenerator(
        pages=synthetic_pages(config.synthetic.num_pages),
        arrivals=DeterministicProcess(rate=20.0),
        seed=config.seed,
    ).materialize(config.warmup_requests + config.requests)

    times: List[float] = []
    hits_at_cut = misses_at_cut = 0
    for index, timed in enumerate(workload):
        if index == config.warmup_requests:
            deployment.wan_sniffer.reset()
            if deployment.bem is not None:
                hits_at_cut = deployment.bem.stats.fragment_hits
                misses_at_cut = deployment.bem.stats.fragment_misses
        deployment.clock.advance_to(timed.at)
        start = deployment.clock.now()
        deployment.serve(timed.request)
        if index >= config.warmup_requests:
            times.append(deployment.clock.now() - start)

    hit_ratio = 0.0
    if deployment.bem is not None:
        hits = deployment.bem.stats.fragment_hits - hits_at_cut
        misses = deployment.bem.stats.fragment_misses - misses_at_cut
        if hits + misses:
            hit_ratio = hits / (hits + misses)
    return EdgeExperimentResult(
        deployment=config.deployment,
        mean_response_time=sum(times) / len(times) if times else 0.0,
        wan_payload_bytes=deployment.wan_sniffer.total_payload_bytes,
        wan_wire_bytes=deployment.wan_sniffer.total_wire_bytes,
        measured_hit_ratio=hit_ratio,
    )


def compare_deployments(
    requests: int = 400, warmup: int = 100, seed: int = 42
) -> Dict[str, EdgeExperimentResult]:
    """Run all three deployments over the identical workload."""
    return {
        name: run_edge_experiment(
            EdgeExperimentConfig(
                deployment=name, requests=requests,
                warmup_requests=warmup, seed=seed,
            )
        )
        for name in DEPLOYMENTS
    }
