"""Ablation: the BEM's intermediate-object cache (its second function).

§4.3.3 gives the BEM two jobs: managing the DPC, and "caching intermediate
objects".  §3.2.2's argument for it: the Personal Greeting and Recommended
Products fragments both derive from one user-profile object; page
factoring would "require the same call to the user profile repository to
be repeated".  This bench measures that repetition: profile-table reads
per request on BooksOnline with the object cache enabled vs disabled.
"""

from repro.appserver import HttpRequest
from repro.core.bem import BackEndMonitor
from repro.core.dpc import DynamicProxyCache
from repro.network.clock import SimulatedClock
from repro.network.latency import FREE
from repro.sites import books

REQUESTS = 40


def run_books(object_cache_enabled: bool):
    clock = SimulatedClock()
    bem = BackEndMonitor(capacity=1024, clock=clock)
    if not object_cache_enabled:
        # Disable by making every fetch recompute: clear before each use.
        original_fetch = bem.objects.fetch

        def no_cache_fetch(key, compute, ttl=None):
            bem.objects.clear()
            return original_fetch(key, compute, ttl=ttl)

        bem.objects.fetch = no_cache_fetch
    server = books.build_server(clock=clock, bem=bem, cost_model=FREE)
    bem.attach_database(server.services.db.bus)
    dpc = DynamicProxyCache(capacity=1024)

    profiles_table = server.services.db.table("user_profiles")
    profiles_table.reset_counters()
    for i in range(REQUESTS):
        request = HttpRequest(
            "/catalog.jsp",
            {"categoryID": ("Fiction", "Science")[i % 2]},
            user_id="user%03d" % (i % 4),
            session_id="s%d" % (i % 4),
        )
        dpc.process_response(server.handle(request).body)
    return profiles_table.rows_read, bem.objects.hits, bem.objects.misses


def test_object_cache_ablation(benchmark, report):
    def run_both():
        return {
            "enabled": run_books(True),
            "disabled": run_books(False),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label in ("enabled", "disabled"):
        reads, hits, misses = results[label]
        rows.append(
            [label, reads, "%.2f" % (reads / REQUESTS), hits, misses]
        )
    report(
        "Object cache ablation: profile-repository reads (%d requests)"
        % REQUESTS,
        ["object cache", "profile rows read", "reads/request",
         "memo hits", "memo misses"],
        rows,
    )

    enabled_reads = results["enabled"][0]
    disabled_reads = results["disabled"][0]
    # Without memoization the profile repository is re-queried per request.
    assert disabled_reads > enabled_reads
    assert results["enabled"][1] > 0  # memo hits occurred
